// Package remote implements the remote memory node: a keyed blob store
// holding evacuated objects (TrackFM/AIFM) or swapped-out pages (Fastswap),
// and a TCP server exposing it over the wire protocol in package fabric.
package remote

import (
	"errors"
	"hash/crc32"
	"sync"

	"trackfm/internal/mem/bufpool"
)

// Integrity errors surfaced by Get. A far-memory blob is written exactly as
// wide as its object or page, so a stored blob shorter than the requested
// read is corruption (a truncated write, bit rot in the length accounting),
// not a miss — the old behaviour of silently zero-filling the tail handed
// the mutator fabricated data. Callers (the fabric server) turn these into
// error frames on the wire.
var (
	// ErrSizeMismatch reports a stored blob shorter than the requested
	// read — a truncated blob is corruption, not a miss.
	ErrSizeMismatch = errors.New("remote: stored blob shorter than requested read")

	// ErrChecksum reports a stored blob whose bytes no longer match the
	// CRC32-C recorded when it was put — in-memory corruption on the node.
	ErrChecksum = errors.New("remote: stored blob fails its checksum")
)

// castagnoli is the CRC32-C polynomial table shared by every checksum in
// the store. CRC32-C matches the wire-trailer checksum in package fabric,
// so an intact blob has one checksum identity end to end.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Checksum computes the CRC32-C checksum the store records for a payload.
// Exported so the fabric layer and replica-set read-repair share one
// definition of "intact".
func Checksum(p []byte) uint32 { return crc32.Checksum(p, castagnoli) }

// blob is a stored payload plus the checksum computed at Put time. The
// payload is backed by a bufpool lease when it came through Put or a
// snapshot load; blobs installed from other sources carry a zero lease,
// whose Release is a no-op, so the release-on-evict paths below need no
// case analysis.
type blob struct {
	data  []byte
	crc   uint32
	lease bufpool.Lease
}

// Store is a thread-safe blob store keyed by object or page ID. It is the
// memory of the remote node. Every blob carries a CRC32-C computed at Put
// time and verified at Get time, so corruption of stored bytes is detected
// at the node instead of being served to a client. The zero value is not
// ready; use NewStore.
type Store struct {
	mu     sync.RWMutex
	blobs  map[uint64]blob
	bytes  uint64
	stats  StoreStats
	clears uint64 // lifetime Clear calls; deliberately NOT reset by Clear
}

// StoreStats counts integrity events observed by the store.
type StoreStats struct {
	SizeMismatches uint64 // Gets that found a too-short blob
	ChecksumFails  uint64 // Gets that found a blob failing its CRC
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{blobs: make(map[uint64]blob)}
}

// Put stores a copy of src under key, replacing any previous blob, and
// records its CRC32-C. The error is always nil for the in-memory store;
// the signature exists so *Store and *DurableStore (whose Put can fail on
// a WAL append) satisfy one store interface.
//
// A same-size overwrite — the steady state of write-back traffic, where
// every push of an object or page is exactly as wide as the last — reuses
// the stored payload in place instead of allocating; new keys and size
// changes draw from the wire buffer pool and release the displaced blob
// back to it. Because blobs can now be rewritten after publication, Get
// reads under the lock rather than after it.
func (s *Store) Put(key uint64, src []byte) error {
	crc := Checksum(src)
	s.mu.Lock()
	if old, ok := s.blobs[key]; ok && len(old.data) == len(src) {
		copy(old.data, src)
		old.crc = crc
		s.blobs[key] = old
		s.mu.Unlock()
		return nil
	}
	lease := bufpool.Get(len(src))
	data := lease.Bytes()
	copy(data, src)
	if old, ok := s.blobs[key]; ok {
		s.bytes -= uint64(len(old.data))
		old.lease.Release()
	}
	s.blobs[key] = blob{data: data, crc: crc, lease: lease}
	s.bytes += uint64(len(src))
	s.mu.Unlock()
	return nil
}

// Get copies the blob under key into dst and reports whether it existed.
// An absent key zero-fills dst and returns (false, nil) — freshly
// allocated remote memory reads as zeros. A present blob is verified
// against its stored CRC32-C and its length: a checksum failure returns
// ErrChecksum, a blob shorter than dst returns ErrSizeMismatch (a
// truncated blob is corruption, not a miss). On error the contents of dst
// are unspecified. A blob longer than dst serves the prefix: a sub-object
// read is well-formed.
func (s *Store) Get(key uint64, dst []byte) (bool, error) {
	// Verify and copy while holding the read lock: since Put rewrites
	// same-size blobs in place, published payload bytes are no longer
	// immutable and must not be touched outside the lock. Readers still
	// proceed in parallel with each other.
	s.mu.RLock()
	b, ok := s.blobs[key]
	if !ok {
		s.mu.RUnlock()
		for i := range dst {
			dst[i] = 0
		}
		return false, nil
	}
	if Checksum(b.data) != b.crc {
		s.mu.RUnlock()
		s.mu.Lock()
		s.stats.ChecksumFails++
		s.mu.Unlock()
		return true, ErrChecksum
	}
	if len(b.data) < len(dst) {
		s.mu.RUnlock()
		s.mu.Lock()
		s.stats.SizeMismatches++
		s.mu.Unlock()
		return true, ErrSizeMismatch
	}
	copy(dst, b.data)
	s.mu.RUnlock()
	return true, nil
}

// Stats returns a copy of the store's integrity counters.
func (s *Store) Stats() StoreStats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.stats
}

// Delete removes key. Deleting an absent key is a no-op. The error is
// always nil (see Put).
func (s *Store) Delete(key uint64) error {
	s.mu.Lock()
	if old, ok := s.blobs[key]; ok {
		s.bytes -= uint64(len(old.data))
		delete(s.blobs, key)
		old.lease.Release()
	}
	s.mu.Unlock()
	return nil
}

// Clear resets the node between experiment phases (e.g. a fault-injection
// harness reusing one server across scenarios): every blob is dropped —
// taking the per-blob CRCs and any FlipByte/Truncate fault-hook corruption
// with it — and the integrity counters are zeroed, so events from one
// phase cannot bleed into the next phase's assertions. Only the lifetime
// clear count (Clears) survives, so observers can tell resets happened.
func (s *Store) Clear() {
	s.mu.Lock()
	for _, b := range s.blobs {
		b.lease.Release()
	}
	s.blobs = make(map[uint64]blob)
	s.bytes = 0
	s.stats = StoreStats{}
	s.clears++
	s.mu.Unlock()
}

// Clears reports lifetime Clear calls; unlike the integrity counters it is
// not reset by Clear itself.
func (s *Store) Clears() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.clears
}

// install replaces the store's contents with blobs (no copies taken):
// recovery seeding a just-built store from a snapshot. Not for concurrent
// use — the store must not be visible to other goroutines yet.
func (s *Store) install(blobs map[uint64]blob) {
	s.mu.Lock()
	for _, b := range s.blobs {
		b.lease.Release()
	}
	s.blobs = blobs
	s.bytes = 0
	for _, b := range blobs {
		s.bytes += uint64(len(b.data))
	}
	s.mu.Unlock()
}

// blobsRef returns the live blob map for snapshotting. The caller must
// hold the mutation path exclusive (the DurableStore's durability mutex):
// concurrent Gets only read, so iterating the map is then safe.
func (s *Store) blobsRef() map[uint64]blob {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.blobs
}

// FlipByte XORs 0xFF into byte i of key's stored blob without updating its
// recorded checksum. It is a fault-injection hook modelling bit rot on the
// remote node (the counterpart of fabric.FaultLink's in-flight corruption);
// a later Get of the blob fails with ErrChecksum. It reports whether the
// blob existed and was wide enough to corrupt.
func (s *Store) FlipByte(key uint64, i int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.blobs[key]
	if !ok || i < 0 || i >= len(b.data) {
		return false
	}
	b.data[i] ^= 0xFF
	return true
}

// Truncate shortens key's stored blob to n bytes, recomputing its checksum
// so only the length — not the bytes — is wrong. It is a fault-injection
// hook modelling a torn write; a later Get wider than n fails with
// ErrSizeMismatch. It reports whether the blob existed and was longer
// than n.
func (s *Store) Truncate(key uint64, n int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.blobs[key]
	if !ok || n < 0 || n >= len(b.data) {
		return false
	}
	s.bytes -= uint64(len(b.data) - n)
	s.blobs[key] = blob{data: b.data[:n], crc: Checksum(b.data[:n]), lease: b.lease}
	return true
}

// Len reports the number of stored blobs.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.blobs)
}

// Bytes reports the total stored payload bytes.
func (s *Store) Bytes() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.bytes
}
