// Package remote implements the remote memory node: a keyed blob store
// holding evacuated objects (TrackFM/AIFM) or swapped-out pages (Fastswap),
// and a TCP server exposing it over the wire protocol in package fabric.
package remote

import "sync"

// Store is a thread-safe blob store keyed by object or page ID. It is the
// memory of the remote node. The zero value is not ready; use NewStore.
type Store struct {
	mu    sync.RWMutex
	blobs map[uint64][]byte
	bytes uint64
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{blobs: make(map[uint64][]byte)}
}

// Put stores a copy of src under key, replacing any previous blob.
func (s *Store) Put(key uint64, src []byte) {
	blob := make([]byte, len(src))
	copy(blob, src)
	s.mu.Lock()
	if old, ok := s.blobs[key]; ok {
		s.bytes -= uint64(len(old))
	}
	s.blobs[key] = blob
	s.bytes += uint64(len(blob))
	s.mu.Unlock()
}

// Get copies the blob under key into dst and reports whether it existed.
// If the blob is shorter than dst the remainder is zero-filled; if longer,
// only len(dst) bytes are copied.
func (s *Store) Get(key uint64, dst []byte) bool {
	s.mu.RLock()
	blob, ok := s.blobs[key]
	s.mu.RUnlock()
	if !ok {
		for i := range dst {
			dst[i] = 0
		}
		return false
	}
	n := copy(dst, blob)
	for i := n; i < len(dst); i++ {
		dst[i] = 0
	}
	return true
}

// Delete removes key. Deleting an absent key is a no-op.
func (s *Store) Delete(key uint64) {
	s.mu.Lock()
	if old, ok := s.blobs[key]; ok {
		s.bytes -= uint64(len(old))
		delete(s.blobs, key)
	}
	s.mu.Unlock()
}

// Clear drops every blob, resetting the node between experiment phases
// (e.g. a fault-injection harness reusing one server across scenarios).
func (s *Store) Clear() {
	s.mu.Lock()
	s.blobs = make(map[uint64][]byte)
	s.bytes = 0
	s.mu.Unlock()
}

// Len reports the number of stored blobs.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.blobs)
}

// Bytes reports the total stored payload bytes.
func (s *Store) Bytes() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.bytes
}
