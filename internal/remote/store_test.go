package remote

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"testing/quick"
)

// mustGet is the test shorthand for a Get that must not surface an
// integrity error.
func mustGet(t *testing.T, s *Store, key uint64, dst []byte) bool {
	t.Helper()
	found, err := s.Get(key, dst)
	if err != nil {
		t.Fatalf("Get(%d): %v", key, err)
	}
	return found
}

func TestStorePutGet(t *testing.T) {
	s := NewStore()
	s.Put(7, []byte{1, 2, 3, 4})
	dst := make([]byte, 4)
	if !mustGet(t, s, 7, dst) {
		t.Fatalf("Get(7) missed after Put")
	}
	if !bytes.Equal(dst, []byte{1, 2, 3, 4}) {
		t.Fatalf("Get returned %v", dst)
	}
}

func TestStoreClear(t *testing.T) {
	s := NewStore()
	s.Put(1, []byte{1, 2})
	s.Put(2, []byte{3})
	s.Clear()
	if s.Len() != 0 || s.Bytes() != 0 {
		t.Fatalf("after Clear: len=%d bytes=%d", s.Len(), s.Bytes())
	}
	if mustGet(t, s, 1, make([]byte, 2)) {
		t.Fatalf("Get found a blob after Clear")
	}
}

// Regression: Clear must also reset the fault-hook damage and the
// integrity counters it caused, so a harness reusing one store across
// scenarios cannot see phase A's corruption events bleed into phase B's
// assertions. Only the lifetime clear count survives.
func TestStoreClearResetsFaultStateAndStats(t *testing.T) {
	s := NewStore()
	s.Put(1, []byte{1, 2, 3, 4})
	if !s.FlipByte(1, 2) {
		t.Fatalf("FlipByte(1, 2) found nothing to corrupt")
	}
	if _, err := s.Get(1, make([]byte, 4)); !errors.Is(err, ErrChecksum) {
		t.Fatalf("Get after FlipByte: err=%v, want ErrChecksum", err)
	}
	if st := s.Stats(); st.ChecksumFails != 1 {
		t.Fatalf("ChecksumFails=%d before Clear, want 1", st.ChecksumFails)
	}
	s.Clear()
	if st := s.Stats(); st != (StoreStats{}) {
		t.Fatalf("Clear left integrity counters: %+v", st)
	}
	if got := s.Clears(); got != 1 {
		t.Fatalf("Clears()=%d, want 1", got)
	}
	// The corrupted blob is gone with its CRC state: a re-put key reads
	// back clean.
	s.Put(1, []byte{5, 6, 7, 8})
	dst := make([]byte, 4)
	if !mustGet(t, s, 1, dst) || !bytes.Equal(dst, []byte{5, 6, 7, 8}) {
		t.Fatalf("re-put after Clear reads %v", dst)
	}
	if st := s.Stats(); st != (StoreStats{}) {
		t.Fatalf("clean re-put bumped integrity counters: %+v", st)
	}
	s.Clear()
	if got := s.Clears(); got != 2 {
		t.Fatalf("Clears()=%d after second Clear, want 2", got)
	}
}

func TestStoreGetMissingZeroFills(t *testing.T) {
	s := NewStore()
	dst := []byte{9, 9, 9}
	if mustGet(t, s, 1, dst) {
		t.Fatalf("Get on empty store reported found")
	}
	if !bytes.Equal(dst, []byte{0, 0, 0}) {
		t.Fatalf("missing Get did not zero-fill: %v", dst)
	}
}

// A stored blob shorter than the read is corruption, not a miss: the old
// zero-fill-the-tail behaviour fabricated data.
func TestStoreGetShortBlobIsSizeMismatch(t *testing.T) {
	s := NewStore()
	s.Put(1, []byte{5, 6})
	dst := make([]byte, 4)
	found, err := s.Get(1, dst)
	if !found {
		t.Fatalf("Get missed")
	}
	if !errors.Is(err, ErrSizeMismatch) {
		t.Fatalf("short blob read err = %v, want ErrSizeMismatch", err)
	}
	if got := s.Stats().SizeMismatches; got != 1 {
		t.Fatalf("SizeMismatches = %d, want 1", got)
	}
}

func TestStoreGetLongBlobServesPrefix(t *testing.T) {
	s := NewStore()
	s.Put(1, []byte{1, 2, 3, 4})
	dst := make([]byte, 2)
	if !mustGet(t, s, 1, dst) {
		t.Fatalf("Get missed")
	}
	if !bytes.Equal(dst, []byte{1, 2}) {
		t.Fatalf("prefix read = %v", dst)
	}
}

// FlipByte corrupts stored bytes under the recorded CRC; the next Get must
// answer ErrChecksum instead of serving the corrupt blob.
func TestStoreChecksumDetectsBitRot(t *testing.T) {
	s := NewStore()
	s.Put(3, []byte{10, 20, 30, 40})
	if !s.FlipByte(3, 2) {
		t.Fatalf("FlipByte missed an existing blob")
	}
	found, err := s.Get(3, make([]byte, 4))
	if !found {
		t.Fatalf("Get missed")
	}
	if !errors.Is(err, ErrChecksum) {
		t.Fatalf("corrupt blob read err = %v, want ErrChecksum", err)
	}
	if got := s.Stats().ChecksumFails; got != 1 {
		t.Fatalf("ChecksumFails = %d, want 1", got)
	}
	// A fresh Put heals the key.
	s.Put(3, []byte{1, 1, 1, 1})
	dst := make([]byte, 4)
	if !mustGet(t, s, 3, dst) || !bytes.Equal(dst, []byte{1, 1, 1, 1}) {
		t.Fatalf("Put did not heal corrupted key: %v", dst)
	}
}

// Truncate models a torn write: the bytes are intact but the blob is too
// short, and the accounting must follow the new length.
func TestStoreTruncateIsSizeMismatch(t *testing.T) {
	s := NewStore()
	s.Put(4, []byte{1, 2, 3, 4})
	if !s.Truncate(4, 2) {
		t.Fatalf("Truncate missed an existing blob")
	}
	if s.Bytes() != 2 {
		t.Fatalf("Bytes() = %d after truncate, want 2", s.Bytes())
	}
	_, err := s.Get(4, make([]byte, 4))
	if !errors.Is(err, ErrSizeMismatch) {
		t.Fatalf("truncated blob read err = %v, want ErrSizeMismatch", err)
	}
	// A read no wider than the surviving prefix is well-formed.
	dst := make([]byte, 2)
	if !mustGet(t, s, 4, dst) || !bytes.Equal(dst, []byte{1, 2}) {
		t.Fatalf("prefix read after truncate = %v", dst)
	}
}

func TestStoreReplaceAccounting(t *testing.T) {
	s := NewStore()
	s.Put(1, make([]byte, 100))
	s.Put(1, make([]byte, 40))
	if s.Bytes() != 40 {
		t.Fatalf("Bytes() = %d after replace, want 40", s.Bytes())
	}
	if s.Len() != 1 {
		t.Fatalf("Len() = %d, want 1", s.Len())
	}
	s.Delete(1)
	if s.Bytes() != 0 || s.Len() != 0 {
		t.Fatalf("delete accounting wrong: bytes=%d len=%d", s.Bytes(), s.Len())
	}
	s.Delete(1) // absent delete is a no-op
}

func TestStorePutCopies(t *testing.T) {
	s := NewStore()
	src := []byte{1, 2, 3}
	s.Put(1, src)
	src[0] = 99
	dst := make([]byte, 3)
	mustGet(t, s, 1, dst)
	if dst[0] != 1 {
		t.Fatalf("Put aliased caller buffer")
	}
}

func TestStoreConcurrent(t *testing.T) {
	s := NewStore()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			buf := make([]byte, 8)
			for i := 0; i < 500; i++ {
				key := uint64(g*1000 + i%50)
				s.Put(key, []byte{byte(g), byte(i), 0, 0, 0, 0, 0, 0})
				if _, err := s.Get(key, buf); err != nil {
					t.Errorf("Get(%d): %v", key, err)
					return
				}
				if i%10 == 0 {
					s.Delete(key)
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestStoreRoundTripProperty(t *testing.T) {
	s := NewStore()
	if err := quick.Check(func(key uint64, payload []byte) bool {
		s.Put(key, payload)
		dst := make([]byte, len(payload))
		found, err := s.Get(key, dst)
		if !found || err != nil {
			return false
		}
		return bytes.Equal(dst, payload)
	}, nil); err != nil {
		t.Error(err)
	}
}
