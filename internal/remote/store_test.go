package remote

import (
	"bytes"
	"sync"
	"testing"
	"testing/quick"
)

func TestStorePutGet(t *testing.T) {
	s := NewStore()
	s.Put(7, []byte{1, 2, 3, 4})
	dst := make([]byte, 4)
	if !s.Get(7, dst) {
		t.Fatalf("Get(7) missed after Put")
	}
	if !bytes.Equal(dst, []byte{1, 2, 3, 4}) {
		t.Fatalf("Get returned %v", dst)
	}
}

func TestStoreClear(t *testing.T) {
	s := NewStore()
	s.Put(1, []byte{1, 2})
	s.Put(2, []byte{3})
	s.Clear()
	if s.Len() != 0 || s.Bytes() != 0 {
		t.Fatalf("after Clear: len=%d bytes=%d", s.Len(), s.Bytes())
	}
	if s.Get(1, make([]byte, 2)) {
		t.Fatalf("Get found a blob after Clear")
	}
}

func TestStoreGetMissingZeroFills(t *testing.T) {
	s := NewStore()
	dst := []byte{9, 9, 9}
	if s.Get(1, dst) {
		t.Fatalf("Get on empty store reported found")
	}
	if !bytes.Equal(dst, []byte{0, 0, 0}) {
		t.Fatalf("missing Get did not zero-fill: %v", dst)
	}
}

func TestStoreGetShortBlobZeroFillsTail(t *testing.T) {
	s := NewStore()
	s.Put(1, []byte{5, 6})
	dst := []byte{9, 9, 9, 9}
	if !s.Get(1, dst) {
		t.Fatalf("Get missed")
	}
	if !bytes.Equal(dst, []byte{5, 6, 0, 0}) {
		t.Fatalf("short blob read = %v", dst)
	}
}

func TestStoreGetLongBlobTruncates(t *testing.T) {
	s := NewStore()
	s.Put(1, []byte{1, 2, 3, 4})
	dst := make([]byte, 2)
	s.Get(1, dst)
	if !bytes.Equal(dst, []byte{1, 2}) {
		t.Fatalf("truncated read = %v", dst)
	}
}

func TestStoreReplaceAccounting(t *testing.T) {
	s := NewStore()
	s.Put(1, make([]byte, 100))
	s.Put(1, make([]byte, 40))
	if s.Bytes() != 40 {
		t.Fatalf("Bytes() = %d after replace, want 40", s.Bytes())
	}
	if s.Len() != 1 {
		t.Fatalf("Len() = %d, want 1", s.Len())
	}
	s.Delete(1)
	if s.Bytes() != 0 || s.Len() != 0 {
		t.Fatalf("delete accounting wrong: bytes=%d len=%d", s.Bytes(), s.Len())
	}
	s.Delete(1) // absent delete is a no-op
}

func TestStorePutCopies(t *testing.T) {
	s := NewStore()
	src := []byte{1, 2, 3}
	s.Put(1, src)
	src[0] = 99
	dst := make([]byte, 3)
	s.Get(1, dst)
	if dst[0] != 1 {
		t.Fatalf("Put aliased caller buffer")
	}
}

func TestStoreConcurrent(t *testing.T) {
	s := NewStore()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			buf := make([]byte, 8)
			for i := 0; i < 500; i++ {
				key := uint64(g*1000 + i%50)
				s.Put(key, []byte{byte(g), byte(i), 0, 0, 0, 0, 0, 0})
				s.Get(key, buf)
				if i%10 == 0 {
					s.Delete(key)
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestStoreRoundTripProperty(t *testing.T) {
	s := NewStore()
	if err := quick.Check(func(key uint64, payload []byte) bool {
		s.Put(key, payload)
		dst := make([]byte, len(payload))
		if !s.Get(key, dst) {
			return false
		}
		return bytes.Equal(dst, payload)
	}, nil); err != nil {
		t.Error(err)
	}
}
