package remote

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
)

// The write-ahead log is the durability backbone of the remote node: every
// mutation (Put, Delete, Clear, and the per-boot generation bump) is
// appended as one self-checking record before it is applied to memory and
// acknowledged. Records are CRC32-C framed so recovery can tell a valid
// record from a torn or bit-rotted tail without trusting anything else on
// disk:
//
//	crc(4, big-endian)  size(4, big-endian)  op(1)  key(8, big-endian)  payload(size-9)
//
// where size counts everything after the size field (op + key + payload)
// and crc covers everything after the crc field (size + op + key +
// payload). A record is valid iff its size is plausible, the buffer holds
// all of it, and the CRC verifies; recovery replays valid records in order
// and truncates the log at the first record that is not — a torn tail from
// a crash mid-append loses only the unacknowledged record being written,
// never an acknowledged one (under FsyncAlways).

// WAL operation codes. They are disk format: never renumber.
const (
	walOpPut    = byte(1) // key + payload: store payload under key
	walOpDelete = byte(2) // key: remove key
	walOpClear  = byte(3) // drop every blob (experiment-phase reset)
	walOpGen    = byte(4) // key carries the node's new restart generation
)

const (
	// walHdrLen is the crc+size prefix; walRecFixed is op+key.
	walHdrLen   = 8
	walRecFixed = 9
	// maxWALPayload bounds one record's payload, matching the fabric
	// protocol's transfer limit: a size field above it is corruption, not
	// a big object.
	maxWALPayload = 16 << 20
)

// WAL decode errors. Both truncate recovery at the failing offset; they are
// distinguished so reports can tell a crash-torn tail (expected) from
// mid-log bit rot (alarming).
var (
	errWALTorn    = errors.New("remote: WAL record torn (log ends mid-record)")
	errWALCorrupt = errors.New("remote: WAL record corrupt (bad size or CRC)")
)

// ErrCrashed is returned by a DurableStore after an injected crash point
// has been reached: the process model is dead and every later mutation
// must fail un-acknowledged. The crash-injection harness in internal/bench
// drives this; production stores never see it.
var ErrCrashed = errors.New("remote: durable store crashed (injected crash point)")

// appendWALRecord appends the encoding of one record to dst.
func appendWALRecord(dst []byte, op byte, key uint64, payload []byte) []byte {
	size := uint32(walRecFixed + len(payload))
	var hdr [walHdrLen + walRecFixed]byte
	binary.BigEndian.PutUint32(hdr[4:8], size)
	hdr[8] = op
	binary.BigEndian.PutUint64(hdr[9:17], key)
	crc := crc32Update(crc32Update(0, hdr[4:]), payload)
	binary.BigEndian.PutUint32(hdr[0:4], crc)
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// crc32Update extends a running CRC32-C over p (the streaming form of
// Checksum, so a record's checksum can cover header and payload without
// concatenating them).
func crc32Update(crc uint32, p []byte) uint32 {
	return crc32.Update(crc, castagnoli, p)
}

// decodeWALRecord parses the record at the head of b, returning its fields
// and total encoded length n. errWALTorn means b ends before the record
// does (a crash mid-append); errWALCorrupt means the record cannot be valid
// at any length (insane size, or a CRC mismatch over fully present bytes).
// The returned payload aliases b.
func decodeWALRecord(b []byte) (op byte, key uint64, payload []byte, n int, err error) {
	if len(b) < walHdrLen {
		return 0, 0, nil, 0, errWALTorn
	}
	crc := binary.BigEndian.Uint32(b[0:4])
	size := binary.BigEndian.Uint32(b[4:8])
	if size < walRecFixed || size > walRecFixed+maxWALPayload {
		return 0, 0, nil, 0, errWALCorrupt
	}
	n = walHdrLen + int(size)
	if len(b) < n {
		return 0, 0, nil, 0, errWALTorn
	}
	if crc32Update(0, b[4:n]) != crc {
		return 0, 0, nil, 0, errWALCorrupt
	}
	op = b[8]
	key = binary.BigEndian.Uint64(b[9:17])
	payload = b[walHdrLen+walRecFixed : n]
	return op, key, payload, n, nil
}

// FsyncPolicy selects when the WAL is flushed to stable storage.
type FsyncPolicy int

const (
	// FsyncAlways syncs after every append: an acknowledged write is
	// durable before the ack. The safest and slowest policy.
	FsyncAlways FsyncPolicy = iota
	// FsyncInterval syncs every FsyncEvery appends: a crash can lose up
	// to one interval of acknowledged writes.
	FsyncInterval
	// FsyncNever leaves flushing to the OS: fastest, weakest.
	FsyncNever
)

// String implements fmt.Stringer.
func (p FsyncPolicy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncInterval:
		return "interval"
	case FsyncNever:
		return "never"
	default:
		return fmt.Sprintf("FsyncPolicy(%d)", int(p))
	}
}

// ParseFsyncPolicy parses the -fsync flag values: always, interval, never.
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch s {
	case "always":
		return FsyncAlways, nil
	case "interval":
		return FsyncInterval, nil
	case "never":
		return FsyncNever, nil
	default:
		return FsyncAlways, fmt.Errorf("remote: unknown fsync policy %q (want always, interval, or never)", s)
	}
}

// wal is the open write-ahead log file plus its append-side state. All
// methods are called with the owning DurableStore's mutex held, so the
// fields need no locking of their own.
type wal struct {
	f         *os.File
	policy    FsyncPolicy
	every     int   // appends between syncs under FsyncInterval
	sinceSync int   // appends since the last sync
	size      int64 // current end offset of the file
	written   int64 // lifetime bytes appended (monotonic across resets)

	// crashAfter is the injected crash point in lifetime-written bytes
	// (-1 = disabled): an append that would carry written past it writes
	// only the bytes up to the point — a deliberately torn record — and
	// fails with ErrCrashed.
	crashAfter int64

	buf []byte // encode scratch, reused across appends
}

// openWAL opens (creating if absent) the log at path and positions appends
// at its current end.
func openWAL(path string, policy FsyncPolicy, every int) (*wal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("remote: open WAL: %w", err)
	}
	end, err := f.Seek(0, 2)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("remote: seek WAL: %w", err)
	}
	return &wal{f: f, policy: policy, every: every, size: end, written: end, crashAfter: -1}, nil
}

// append encodes and writes one record, honoring the fsync policy and the
// injected crash point. On ErrCrashed a torn prefix of the record may be on
// disk — exactly what a real crash mid-write leaves.
func (w *wal) append(op byte, key uint64, payload []byte) error {
	w.buf = appendWALRecord(w.buf[:0], op, key, payload)
	rec := w.buf
	if w.crashAfter >= 0 && w.written+int64(len(rec)) > w.crashAfter {
		if rem := w.crashAfter - w.written; rem > 0 {
			n, _ := w.f.Write(rec[:rem])
			w.size += int64(n)
			w.written += int64(n)
		}
		w.crashAfter = w.written // later appends crash with zero bytes
		return ErrCrashed
	}
	n, err := w.f.Write(rec)
	w.size += int64(n)
	w.written += int64(n)
	if err != nil {
		return fmt.Errorf("remote: WAL append: %w", err)
	}
	switch w.policy {
	case FsyncAlways:
		return w.sync()
	case FsyncInterval:
		w.sinceSync++
		if w.sinceSync >= w.every {
			return w.sync()
		}
	}
	return nil
}

// sync flushes the log to stable storage and resets the interval counter.
func (w *wal) sync() error {
	w.sinceSync = 0
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("remote: WAL fsync: %w", err)
	}
	return nil
}

// reset truncates the log to empty after a compacting snapshot has made
// its contents redundant. Lifetime written-byte accounting is preserved.
func (w *wal) reset() error {
	if err := w.f.Truncate(0); err != nil {
		return fmt.Errorf("remote: WAL truncate: %w", err)
	}
	if _, err := w.f.Seek(0, 0); err != nil {
		return fmt.Errorf("remote: WAL rewind: %w", err)
	}
	w.size = 0
	return nil
}

// close releases the file without flushing — the abrupt half of a crash.
func (w *wal) close() error { return w.f.Close() }

// walReplay is the outcome of scanning a log during recovery.
type walReplay struct {
	records uint64 // valid records replayed
	bytes   uint64 // bytes consumed by valid records
	dropped uint64 // tail bytes discarded at the first invalid record
	torn    bool   // the tail ended mid-record (crash signature)
	corrupt bool   // the tail failed its CRC with all bytes present
}

// replayWAL scans the log bytes in b, invoking apply for every valid
// record in order, and stops at the first torn or corrupt record. The
// remainder is reported as dropped; the caller truncates the file there so
// the next boot starts from a clean log.
func replayWAL(b []byte, apply func(op byte, key uint64, payload []byte)) walReplay {
	var r walReplay
	off := 0
	for off < len(b) {
		op, key, payload, n, err := decodeWALRecord(b[off:])
		if err != nil {
			r.dropped = uint64(len(b) - off)
			r.torn = errors.Is(err, errWALTorn)
			r.corrupt = errors.Is(err, errWALCorrupt)
			break
		}
		apply(op, key, payload)
		off += n
		r.records++
	}
	r.bytes = uint64(off)
	return r
}
