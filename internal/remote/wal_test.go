package remote

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"
)

func TestWALRecordRoundTrip(t *testing.T) {
	cases := []struct {
		op      byte
		key     uint64
		payload []byte
	}{
		{walOpPut, 7, []byte("hello far memory")},
		{walOpPut, 0, nil},
		{walOpDelete, ^uint64(0), nil},
		{walOpClear, 0, nil},
		{walOpGen, 42, nil},
		{walOpPut, 1, bytes.Repeat([]byte{0xAB}, 4096)},
	}
	var log []byte
	for _, c := range cases {
		log = appendWALRecord(log, c.op, c.key, c.payload)
	}
	off := 0
	for i, c := range cases {
		op, key, payload, n, err := decodeWALRecord(log[off:])
		if err != nil {
			t.Fatalf("record %d: decode: %v", i, err)
		}
		if op != c.op || key != c.key || !bytes.Equal(payload, c.payload) {
			t.Fatalf("record %d: got (op=%d key=%d len=%d), want (op=%d key=%d len=%d)",
				i, op, key, len(payload), c.op, c.key, len(c.payload))
		}
		off += n
	}
	if off != len(log) {
		t.Fatalf("decoded %d of %d bytes", off, len(log))
	}
}

// Every strict prefix of a record is torn, never corrupt: recovery must
// classify a crash mid-append as the expected tail loss, not bit rot.
func TestWALDecodePrefixIsTorn(t *testing.T) {
	rec := appendWALRecord(nil, walOpPut, 99, []byte("payload bytes"))
	for n := 0; n < len(rec); n++ {
		_, _, _, _, err := decodeWALRecord(rec[:n])
		if !errors.Is(err, errWALTorn) {
			t.Fatalf("prefix of %d/%d bytes: err=%v, want errWALTorn", n, len(rec), err)
		}
	}
}

func TestWALDecodeDetectsCorruption(t *testing.T) {
	rec := appendWALRecord(nil, walOpPut, 5, []byte("intact payload"))

	// Any single flipped byte fails the CRC (flipping inside the size field
	// may instead read as torn/corrupt-size; all are rejections).
	for i := range rec {
		bad := bytes.Clone(rec)
		bad[i] ^= 0xFF
		if _, _, _, _, err := decodeWALRecord(bad); err == nil {
			t.Fatalf("flipped byte %d decoded as valid", i)
		}
	}

	// An insane size field is corrupt even though the buffer is short: a
	// 2 GiB "record" must not be reported as a torn tail to wait for.
	bad := bytes.Clone(rec)
	binary.BigEndian.PutUint32(bad[4:8], walRecFixed+maxWALPayload+1)
	if _, _, _, _, err := decodeWALRecord(bad); !errors.Is(err, errWALCorrupt) {
		t.Fatalf("oversize record: err=%v, want errWALCorrupt", err)
	}
	binary.BigEndian.PutUint32(bad[4:8], walRecFixed-1)
	if _, _, _, _, err := decodeWALRecord(bad); !errors.Is(err, errWALCorrupt) {
		t.Fatalf("undersize record: err=%v, want errWALCorrupt", err)
	}
}

func TestReplayWALStopsAtFirstInvalid(t *testing.T) {
	var log []byte
	log = appendWALRecord(log, walOpPut, 1, []byte("one"))
	log = appendWALRecord(log, walOpPut, 2, []byte("two"))
	valid := len(log)
	full := appendWALRecord(log, walOpPut, 3, []byte("three"))
	torn := full[:valid+5] // third record torn mid-header

	var keys []uint64
	rep := replayWAL(torn, func(op byte, key uint64, payload []byte) {
		keys = append(keys, key)
	})
	if rep.records != 2 || rep.bytes != uint64(valid) {
		t.Fatalf("replay: records=%d bytes=%d, want 2/%d", rep.records, rep.bytes, valid)
	}
	if !rep.torn || rep.corrupt {
		t.Fatalf("replay: torn=%v corrupt=%v, want torn only", rep.torn, rep.corrupt)
	}
	if rep.dropped != uint64(len(torn)-valid) {
		t.Fatalf("replay dropped %d bytes, want %d", rep.dropped, len(torn)-valid)
	}
	if len(keys) != 2 || keys[0] != 1 || keys[1] != 2 {
		t.Fatalf("replayed keys %v", keys)
	}

	// Mid-log corruption (not just a tail) also stops the replay there:
	// nothing after the damage can be trusted to be aligned.
	bad := bytes.Clone(full)
	bad[2] ^= 0xFF // inside the first record's CRC
	rep = replayWAL(bad, func(byte, uint64, []byte) {})
	if rep.records != 0 || !rep.corrupt {
		t.Fatalf("corrupt head: records=%d corrupt=%v, want 0/true", rep.records, rep.corrupt)
	}
}

// FuzzWALRecord drives the decoder with arbitrary bytes: it must never
// panic, never consume more than the buffer, and — when it does accept a
// record — re-encoding the decoded fields must reproduce the consumed
// prefix exactly (the format has one canonical encoding).
func FuzzWALRecord(f *testing.F) {
	f.Add(appendWALRecord(nil, walOpPut, 7, []byte("seed payload")))
	f.Add(appendWALRecord(nil, walOpDelete, 0, nil))
	f.Add(appendWALRecord(nil, walOpGen, 1, nil))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, 32))
	f.Fuzz(func(t *testing.T, b []byte) {
		op, key, payload, n, err := decodeWALRecord(b)
		if err != nil {
			if !errors.Is(err, errWALTorn) && !errors.Is(err, errWALCorrupt) {
				t.Fatalf("unexpected decode error class: %v", err)
			}
			return
		}
		if n < walHdrLen+walRecFixed || n > len(b) {
			t.Fatalf("decoded length %d out of range (buffer %d)", n, len(b))
		}
		re := appendWALRecord(nil, op, key, payload)
		if !bytes.Equal(re, b[:n]) {
			t.Fatalf("re-encode differs from consumed prefix (len %d vs %d)", len(re), n)
		}
	})
}
