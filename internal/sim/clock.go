// Package sim provides the deterministic simulation substrate shared by all
// far-memory backends in this repository: a virtual cycle clock, event
// counters, the calibrated cycle-cost tables from the TrackFM paper
// (Tables 1 and 2), and a seeded random number source.
//
// Every runtime event in the system — a compiler-injected guard, a kernel
// page fault, a network transfer — charges its cost to a Clock. Wall-clock
// results are then derived as cycles divided by the simulated CPU frequency
// (2.40 GHz, matching the paper's Xeon E5-2640v4 testbed). Because all
// costs are deterministic, every experiment in the benchmark harness is
// reproducible bit-for-bit.
package sim

import (
	"fmt"
	"sync/atomic"
	"time"
)

// Frequency is the simulated CPU clock rate in cycles per second. The
// paper's testbed CPUs are clocked at 2.40 GHz.
const Frequency = 2_400_000_000

// Clock accumulates simulated cycles. The zero value is a clock at cycle
// zero, ready to use. All charging is serialized by the simulation engine
// (see package aifm for how concurrency is modelled), but the accumulator
// is maintained atomically so that observers — stats tickers, the metrics
// registry, breaker deadlines read from probe goroutines — can sample it
// concurrently without racing the mutator.
type Clock struct {
	cycles uint64 // accessed atomically; plain uint64 keeps Clock copyable
}

// Advance charges n cycles to the clock.
func (c *Clock) Advance(n uint64) { atomic.AddUint64(&c.cycles, n) }

// Cycles reports the total cycles charged so far.
func (c *Clock) Cycles() uint64 { return atomic.LoadUint64(&c.cycles) }

// Reset returns the clock to cycle zero.
func (c *Clock) Reset() { atomic.StoreUint64(&c.cycles, 0) }

// Elapsed converts the charged cycles into simulated wall-clock time at the
// configured CPU frequency.
func (c *Clock) Elapsed() time.Duration {
	return time.Duration(float64(c.Cycles()) / Frequency * float64(time.Second))
}

// Seconds reports the elapsed simulated time in seconds as a float, which
// is the unit most of the paper's figures use.
func (c *Clock) Seconds() float64 {
	return float64(c.Cycles()) / Frequency
}

// String implements fmt.Stringer.
func (c *Clock) String() string {
	return fmt.Sprintf("%d cycles (%.3fs @2.4GHz)", c.Cycles(), c.Seconds())
}
