package sim

// CostModel is the calibrated table of primitive cycle costs used by every
// backend. Defaults reproduce the paper's measured medians (Tables 1 and 2)
// on the CloudLab x170 testbed. All costs are in CPU cycles at 2.40 GHz.
//
// "Cached" costs apply when the metadata touched by the primitive (the
// TrackFM object state table entry, or the kernel's page-table/swap-cache
// lines) is warm in the CPU cache; "uncached" costs apply on first touch.
type CostModel struct {
	// LocalLoadStore is the cost of an unguarded local load/store
	// instruction (paper §4.1: 36 cycles).
	LocalLoadStore uint64

	// CustodyCheck is the cost of the custody check alone, paid when a
	// pointer turns out not to be TrackFM-managed and the original
	// load/store runs (roughly four instructions, §3.3).
	CustodyCheck uint64

	// Guard costs, Table 1.
	FastGuardReadCached    uint64 // 21
	FastGuardWriteCached   uint64 // 21
	FastGuardReadUncached  uint64 // 297
	FastGuardWriteUncached uint64 // 309
	SlowGuardReadCached    uint64 // 144
	SlowGuardWriteCached   uint64 // 159
	SlowGuardReadUncached  uint64 // 453
	SlowGuardWriteUncached uint64 // 432

	// Loop-chunking primitive costs (§3.4). A boundary check is 3
	// instructions versus the 14-instruction fast-path guard; the
	// locality-invariant guard is a runtime call slightly more expensive
	// than a slow-path guard because it also pins the object. ChunkInit
	// is the one-time tfm_init/tfm_rw runtime call on loop entry that
	// registers the chunk state; it is what makes chunking detrimental
	// for short loops (k-means, Fig. 8) and fixes the empirical
	// crossover of Fig. 6 at ~730 elements per object.
	BoundaryCheck        uint64 // ~5 cycles (3 instructions)
	LocalityInvariantPin uint64 // ~180 cycles
	ChunkInit            uint64 // ~11.6K cycles, once per loop entry

	// Fastswap fault costs, Table 2. SwapFaultLocal is the kernel fault
	// path (mapping + cgroup accounting) charged on every fault;
	// SwapFaultRemote is the paper's measured END-TO-END remote fault
	// cost, kept as the calibration target: the simulator composes a
	// major fault as SwapFaultLocal + RemotePageFetch(page), and the
	// RDMA fixed cost below is tuned so that sum lands on this value.
	SwapFaultLocal  uint64 // 1_300 (page present locally / zero-fill)
	SwapFaultRemote uint64 // 34_000 (calibration target, not charged directly)

	// Remote fetch base latencies (request/response software overhead plus
	// wire latency, excluding the bandwidth term). Calibration targets
	// from Table 2: a remote object access via AIFM's TCP backend costs
	// ~35K cycles end-to-end including the slow guard (453 + fixed +
	// xfer(4KiB) = ~35.4K), and a Fastswap remote fault costs ~34K
	// (SwapFaultLocal + fixed + xfer(4KiB) = ~34K). The bandwidth term
	// for 4KB at 25 Gb/s is ~3.1K cycles.
	RemoteFetchFixedTCP  uint64 // AIFM/TrackFM backend fixed cost
	RemoteFetchFixedRDMA uint64 // Fastswap backend fixed cost

	// NetworkBytesPerCycle is the interconnect bandwidth expressed in
	// bytes per CPU cycle. 25 Gb/s at 2.4 GHz is ~1.3 B/cycle.
	NetworkBytesPerCycle float64

	// MetaIndirectCached/Uncached model AIFM's second metadata memory
	// reference — the one TrackFM's object state table eliminates
	// (§3.2: "Determining this state in AIFM requires two memory
	// references... TrackFM eliminates one of these operations").
	// Charged on guards only when the OST is disabled (ablation).
	MetaIndirectCached   uint64
	MetaIndirectUncached uint64

	// EvacuateObject is the software cost of evacuating one object to the
	// remote node (excluding the transfer term); EvictPage likewise for a
	// Fastswap page reclaim including cgroup accounting (§4.1 notes
	// mapping and cgroups memory reclamation as Fastswap overheads).
	EvacuateObject uint64
	EvictPage      uint64

	// MallocCost and FreeCost charge the TrackFM-managed allocation calls
	// (libc transformation pass, §3.1).
	MallocCost uint64
	FreeCost   uint64

	// DerefScopeCost charges entering+leaving an AIFM DerefScope, paid by
	// library-mode (AIFM) accesses and by slow-path guards.
	DerefScopeCost uint64

	// SmartPointerIndirection is AIFM's per-access overhead in library
	// mode (§4.1 notes AIFM "does incur overhead for smart pointer
	// indirection").
	SmartPointerIndirection uint64

	// Compressed-tier costs. A demotion pays TierAccessFixed plus the
	// compression bandwidth term; a promotion (tier hit) pays
	// TierAccessFixed plus the decompression term. Rates follow
	// single-core LZ-class codecs (compress ~2 GB/s, decompress ~5 GB/s
	// at 2.4 GHz ⇒ ~0.8 and ~2.0 B/cycle): a 4 KiB tier hit lands near
	// 2.4K cycles against ~35K for the TCP fetch it replaces, which is
	// the entire economics of the middle tier.
	TierAccessFixed         uint64  // map/queue bookkeeping per tier op
	CompressBytesPerCycle   float64 // demotion (compression) bandwidth
	DecompressBytesPerCycle float64 // promotion (decompression) bandwidth

	// PrefetchIssue is the unhidable per-message software cost of one
	// asynchronous prefetch (issue + completion handling on the TCP
	// backend). A prefetched object pays max(PrefetchIssue, bandwidth
	// term): the fixed network latency overlaps with computation, which
	// is how AIFM's prefetcher hides remote fetch latency (§4.3), but
	// many small packets cannot reach wire bandwidth (§3.2).
	PrefetchIssue uint64
}

// DefaultCosts returns the cost model calibrated to the paper's Tables 1-2.
func DefaultCosts() CostModel {
	return CostModel{
		LocalLoadStore: 36,
		CustodyCheck:   6,

		FastGuardReadCached:    21,
		FastGuardWriteCached:   21,
		FastGuardReadUncached:  297,
		FastGuardWriteUncached: 309,
		SlowGuardReadCached:    144,
		SlowGuardWriteCached:   159,
		SlowGuardReadUncached:  453,
		SlowGuardWriteUncached: 432,

		BoundaryCheck:        1, // 3 ALU instructions retire ~1/cycle wall
		LocalityInvariantPin: 180,
		ChunkInit:            14_564, // crossover at (14564+180-144)/(21-1) = 730

		SwapFaultLocal:  1_300,
		SwapFaultRemote: 34_000,

		RemoteFetchFixedTCP:  31_800, // 453 + this + xfer(4KiB) ⇒ ~35.4K
		RemoteFetchFixedRDMA: 29_554, // 1300 + this + xfer(4KiB) ⇒ ~34.0K

		NetworkBytesPerCycle: 1.302, // 25 Gb/s at 2.4 GHz

		MetaIndirectCached:   14,
		MetaIndirectUncached: 180,

		EvacuateObject: 600,
		EvictPage:      2_000,

		MallocCost: 120,
		FreeCost:   80,

		DerefScopeCost:          30,
		SmartPointerIndirection: 12,
		PrefetchIssue:           1_500,

		TierAccessFixed:         300,
		CompressBytesPerCycle:   0.8,
		DecompressBytesPerCycle: 2.0,
	}
}

// TransferCycles returns the bandwidth term for moving n bytes across the
// interconnect.
func (m *CostModel) TransferCycles(n int) uint64 {
	if n <= 0 {
		return 0
	}
	return uint64(float64(n) / m.NetworkBytesPerCycle)
}

// RemoteObjectFetch returns the full cost of fetching an n-byte object via
// the AIFM TCP backend: fixed software+wire latency plus the bandwidth term.
func (m *CostModel) RemoteObjectFetch(n int) uint64 {
	return m.RemoteFetchFixedTCP + m.TransferCycles(n)
}

// RemotePageFetch returns the full cost of fetching an n-byte page via the
// Fastswap RDMA backend.
func (m *CostModel) RemotePageFetch(n int) uint64 {
	return m.RemoteFetchFixedRDMA + m.TransferCycles(n)
}

// TierCompress returns the cost of demoting an n-byte object into the
// compressed tier.
func (m *CostModel) TierCompress(n int) uint64 {
	if m.CompressBytesPerCycle <= 0 {
		return m.TierAccessFixed
	}
	return m.TierAccessFixed + uint64(float64(n)/m.CompressBytesPerCycle)
}

// TierDecompress returns the cost of promoting an n-byte object out of
// the compressed tier — the latency a tier hit pays instead of a fabric
// round trip.
func (m *CostModel) TierDecompress(n int) uint64 {
	if m.DecompressBytesPerCycle <= 0 {
		return m.TierAccessFixed
	}
	return m.TierAccessFixed + uint64(float64(n)/m.DecompressBytesPerCycle)
}
