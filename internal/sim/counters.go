package sim

import (
	"fmt"
	"strings"
	"sync/atomic"
)

// Counters tallies the runtime events the paper's evaluation reports:
// guard executions by path, page faults by kind, bytes moved over the
// interconnect, evacuations, and prefetch outcomes. The zero value is
// ready to use.
//
// Concurrency contract: writers increment fields with Inc/Add (atomic);
// concurrent observers (stats tickers, the obs registry, per-phase bench
// reporting) read through Snapshot. The fields stay plain uint64 so the
// struct remains copyable and the aggregate accessors below keep working
// on quiescent copies — Snapshot returns exactly such a copy.
type Counters struct {
	// TrackFM guard events.
	CustodyRejects  uint64 // pointer not TrackFM-managed; original access runs
	FastPathGuards  uint64
	SlowPathGuards  uint64
	BoundaryChecks  uint64 // loop-chunking per-iteration checks
	LocalityGuards  uint64 // loop-chunking object-boundary pins
	ChunkInits      uint64 // loop-chunking tfm_init runtime calls
	RemoteFetches   uint64 // slow paths that required a remote fetch
	CriticalFetches uint64 // loads/stores that blocked on a remote fetch

	// Fastswap events.
	MinorFaults uint64 // page present in swap cache
	MajorFaults uint64 // page fetched from the remote node

	// Data movement.
	BytesFetched  uint64 // remote -> local
	BytesEvicted  uint64 // local -> remote
	Evacuations   uint64 // objects evacuated
	PageEvictions uint64 // pages reclaimed

	// Prefetching.
	PrefetchIssued uint64
	PrefetchHits   uint64 // slow paths avoided because data was prefetched

	// Allocation events.
	Mallocs uint64
	Frees   uint64

	// Fault handling (error-aware transports only; the in-process
	// SimLink never fails). Each failed remote operation attempt a
	// runtime observes is counted once, whether it was retried or
	// surfaced — so these reconcile exactly against an injector's
	// fault counts.
	RemoteFetchFaults uint64 // failed fetch attempts observed by a runtime
	RemotePushFaults  uint64 // failed push/delete attempts observed by a runtime
	EvictionStalls    uint64 // evictions aborted after push retries exhausted

	// Overload control (deadline-bearing configs only; all zero without
	// an OpDeadline).
	DeadlineMisses  uint64 // remote ops that failed with ErrDeadlineExceeded
	OverloadRejects uint64 // remote ops shed by server admission control
	DegradedEntries uint64 // times a pool entered degraded mode

	// Concurrency events (multi-goroutine runtimes only; all zero in a
	// single-goroutine run).
	StripeContention   uint64 // pool stripe-lock acquisitions that had to wait
	SingleflightShared uint64 // localize calls served by another caller's in-flight fetch
	EvacAborts         uint64 // background-evacuation candidates aborted (pinned or re-touched)

	// Memory pressure (elastic budget + thrash detection).
	Refaults                uint64 // fetches of an object evicted within the thrash window
	PrefetchSkippedPressure uint64 // prefetches skipped because occupancy was above the high-water mark

	// Compressed middle tier (zero when no CompressedBudget is set).
	TierHits    uint64 // localizations served by decompressing from the tier
	TierMisses  uint64 // tier probes that fell through to the fabric
	TierDemotes uint64 // evictions that parked a compressed copy in the tier
}

// Inc atomically adds one to a counter field: sim.Inc(&env.Counters.X).
func Inc(p *uint64) { atomic.AddUint64(p, 1) }

// Add atomically adds n to a counter field.
func Add(p *uint64, n uint64) { atomic.AddUint64(p, n) }

// Load atomically reads a counter field.
func Load(p *uint64) uint64 { return atomic.LoadUint64(p) }

// Reset zeroes all counters. Like Snapshot it loads-and-stores each field
// atomically, so it can run against concurrent writers without racing
// (writers mid-increment may land on either side of the reset).
func (c *Counters) Reset() {
	for _, p := range c.fields() {
		atomic.StoreUint64(p, 0)
	}
}

// fields enumerates every counter field, in declaration order. Snapshot,
// Reset, and the obs registration iterate this single list so a new field
// only needs to be added here (and named in metricNames) once.
func (c *Counters) fields() []*uint64 {
	return []*uint64{
		&c.CustodyRejects, &c.FastPathGuards, &c.SlowPathGuards,
		&c.BoundaryChecks, &c.LocalityGuards, &c.ChunkInits,
		&c.RemoteFetches, &c.CriticalFetches,
		&c.MinorFaults, &c.MajorFaults,
		&c.BytesFetched, &c.BytesEvicted, &c.Evacuations, &c.PageEvictions,
		&c.PrefetchIssued, &c.PrefetchHits,
		&c.Mallocs, &c.Frees,
		&c.RemoteFetchFaults, &c.RemotePushFaults, &c.EvictionStalls,
		&c.DeadlineMisses, &c.OverloadRejects, &c.DegradedEntries,
		&c.StripeContention, &c.SingleflightShared, &c.EvacAborts,
		&c.Refaults, &c.PrefetchSkippedPressure,
		&c.TierHits, &c.TierMisses, &c.TierDemotes,
	}
}

// Snapshot returns a point-in-time copy of the counters, loading each
// field atomically. The copy is quiescent plain data: all accessor methods
// (Guards, Faults, String, ...) are safe on it, and Delta subtracts two of
// them. This is the race-free read path for tickers running concurrently
// with a pool or swap runtime.
func (c *Counters) Snapshot() Counters {
	var out Counters
	src, dst := c.fields(), out.fields()
	for i, p := range src {
		*dst[i] = atomic.LoadUint64(p)
	}
	return out
}

// Delta returns the field-wise difference c - prev, for interval reporting
// between two Snapshots.
func (c Counters) Delta(prev Counters) Counters {
	src, sub := c.fields(), prev.fields()
	var out Counters
	dst := out.fields()
	for i := range src {
		*dst[i] = *src[i] - *sub[i]
	}
	return out
}

// Guards reports the total guard checks executed (fast + slow), the count
// the paper plots against Fastswap's fault count in Figs. 14b and 16b.
func (c *Counters) Guards() uint64 { return c.FastPathGuards + c.SlowPathGuards }

// Faults reports the total Fastswap page faults (minor + major).
func (c *Counters) Faults() uint64 { return c.MinorFaults + c.MajorFaults }

// TotalFetched reports bytes moved from the remote node to local memory,
// used for the I/O-amplification figures (13b, 16c).
func (c *Counters) TotalFetched() uint64 { return c.BytesFetched }

// Amplification reports BytesFetched divided by the working-set size, the
// paper's I/O-amplification metric (e.g. "Fastswap transfers 43x the
// working set"). Returns 0 when workingSet is 0.
func (c *Counters) Amplification(workingSet uint64) float64 {
	if workingSet == 0 {
		return 0
	}
	return float64(c.BytesFetched) / float64(workingSet)
}

// String renders a compact human-readable summary of the non-zero counters.
func (c *Counters) String() string {
	var b strings.Builder
	add := func(name string, v uint64) {
		if v != 0 {
			fmt.Fprintf(&b, "%s=%d ", name, v)
		}
	}
	add("fast", c.FastPathGuards)
	add("slow", c.SlowPathGuards)
	add("custodyRej", c.CustodyRejects)
	add("bndChk", c.BoundaryChecks)
	add("locGuard", c.LocalityGuards)
	add("remoteFetch", c.RemoteFetches)
	add("minorFault", c.MinorFaults)
	add("majorFault", c.MajorFaults)
	add("bytesIn", c.BytesFetched)
	add("bytesOut", c.BytesEvicted)
	add("evac", c.Evacuations)
	add("pageEvict", c.PageEvictions)
	add("pfIssued", c.PrefetchIssued)
	add("pfHits", c.PrefetchHits)
	add("fetchFault", c.RemoteFetchFaults)
	add("pushFault", c.RemotePushFaults)
	add("evictStall", c.EvictionStalls)
	add("dlMiss", c.DeadlineMisses)
	add("overload", c.OverloadRejects)
	add("degraded", c.DegradedEntries)
	add("lockWait", c.StripeContention)
	add("sfShared", c.SingleflightShared)
	add("evacAbort", c.EvacAborts)
	add("refault", c.Refaults)
	add("pfSkip", c.PrefetchSkippedPressure)
	add("tierHit", c.TierHits)
	add("tierMiss", c.TierMisses)
	add("tierDemote", c.TierDemotes)
	return strings.TrimSpace(b.String())
}

// Env bundles the pieces every backend needs: a clock to charge, counters
// to tally, and the cost model to consult. A single Env is threaded through
// one experiment run so that all components observe one logical timeline.
// Metrics() and Lat() lazily attach an obs.Registry with every counter,
// the clock, and the latency histograms pre-registered. Env must not be
// copied once Metrics or Lat has been called.
type Env struct {
	Clock    Clock
	Counters Counters
	Costs    CostModel

	obs obsState
}

// NewEnv returns an Env with the default paper-calibrated cost model.
func NewEnv() *Env {
	return &Env{Costs: DefaultCosts()}
}

// Reset clears the clock, counters, and latency histograms but keeps the
// cost model and the registry (registered metrics simply read zero again).
func (e *Env) Reset() {
	e.Clock.Reset()
	e.Counters.Reset()
	e.resetObs()
}
