package sim

import (
	"sync"

	"trackfm/internal/obs"
)

// Latencies bundles the sim-clock latency histograms every runtime
// observes into: the far-memory operations whose distributions the
// paper's evaluation reasons about. Units are simulated clock cycles
// (divide by Frequency for seconds); buckets are
// obs.DefaultCycleBuckets.
type Latencies struct {
	RemoteFetch    *obs.Histogram // fetch one object/page from the remote node
	RemotePush     *obs.Histogram // push one object/page to the remote node
	Evacuation     *obs.Histogram // full evacuation of one slot (push + bookkeeping)
	GuardSlow      *obs.Histogram // guard slow path end-to-end (localize incl. fetch)
	Failover       *obs.Histogram // replicated fetch that needed >=1 failover
	LockWait       *obs.Histogram // contended pool stripe-lock waits (wall time converted to cycles)
	DeadlineMiss   *obs.Histogram // how far past its budget a deadline-missing op finished
	TierDecompress *obs.Histogram // promotion from the compressed tier (decompress into the arena)
}

// metricDefs names each Counters field for the obs registry, in the same
// order as (*Counters).fields().
var metricDefs = []struct{ name, help string }{
	{"trackfm_guard_custody_rejects_total", "Guarded accesses to pointers not managed by TrackFM."},
	{"trackfm_guard_fast_total", "Guard executions resolved on the fast path."},
	{"trackfm_guard_slow_total", "Guard executions that took the slow path."},
	{"trackfm_boundary_checks_total", "Loop-chunking per-iteration boundary checks."},
	{"trackfm_locality_guards_total", "Loop-chunking object-boundary pins."},
	{"trackfm_chunk_inits_total", "Loop-chunking tfm_init runtime calls."},
	{"trackfm_remote_fetches_total", "Slow paths that required a remote fetch."},
	{"trackfm_critical_fetches_total", "Loads/stores that blocked on a remote fetch."},
	{"trackfm_minor_faults_total", "Fastswap faults served from the swap cache."},
	{"trackfm_major_faults_total", "Fastswap faults fetched from the remote node."},
	{"trackfm_bytes_fetched_total", "Bytes moved remote to local."},
	{"trackfm_bytes_evicted_total", "Bytes moved local to remote."},
	{"trackfm_evacuations_total", "Objects evacuated to far memory."},
	{"trackfm_page_evictions_total", "Pages reclaimed by fastswap."},
	{"trackfm_prefetch_issued_total", "Prefetches issued."},
	{"trackfm_prefetch_hits_total", "Slow paths avoided by a completed prefetch."},
	{"trackfm_mallocs_total", "Far-memory allocations."},
	{"trackfm_frees_total", "Far-memory frees."},
	{"trackfm_remote_fetch_faults_total", "Failed remote fetch attempts observed by a runtime."},
	{"trackfm_remote_push_faults_total", "Failed remote push/delete attempts observed by a runtime."},
	{"trackfm_eviction_stalls_total", "Evictions aborted after push retries were exhausted."},
	{"trackfm_deadline_misses_total", "Remote operations that failed with ErrDeadlineExceeded."},
	{"trackfm_overload_rejects_total", "Remote operations shed by server-side admission control."},
	{"trackfm_degraded_entries_total", "Times a pool entered degraded mode after repeated deadline misses."},
	{"trackfm_stripe_contention_total", "Pool stripe-lock acquisitions that had to wait."},
	{"trackfm_singleflight_shared_total", "Localize calls served by another caller's in-flight fetch."},
	{"trackfm_evac_aborts_total", "Background-evacuation candidates aborted (pinned or re-touched)."},
	{"trackfm_refaults_total", "Fetches that re-localized an object evicted within the thrash window."},
	{"trackfm_prefetch_skipped_pressure_total", "Prefetches skipped because pool occupancy exceeded the admission high-water mark."},
	{"trackfm_tier_hits_total", "Localizations served by decompressing from the compressed middle tier."},
	{"trackfm_tier_misses_total", "Compressed-tier probes that fell through to the fabric."},
	{"trackfm_tier_demotes_total", "Evictions that parked a compressed copy in the middle tier."},
}

// obsState holds the lazily built registry wiring so Env itself stays a
// plain bundle of Clock/Counters/Costs.
type obsState struct {
	once     sync.Once
	registry *obs.Registry
	lat      *Latencies
}

func (e *Env) initObs() {
	e.obs.once.Do(func() {
		reg := obs.NewRegistry()
		for i, p := range e.Counters.fields() {
			p := p
			reg.CounterFunc(metricDefs[i].name, metricDefs[i].help, func() uint64 { return Load(p) })
		}
		reg.GaugeFunc("trackfm_sim_clock_cycles",
			"Simulated clock position in cycles (2.4 GHz).",
			func() float64 { return float64(e.Clock.Cycles()) })
		lat := &Latencies{
			RemoteFetch: reg.Histogram("trackfm_remote_fetch_cycles",
				"Remote fetch latency in simulated cycles.", nil),
			RemotePush: reg.Histogram("trackfm_remote_push_cycles",
				"Remote push latency in simulated cycles.", nil),
			Evacuation: reg.Histogram("trackfm_evacuation_cycles",
				"Slot evacuation latency in simulated cycles.", nil),
			GuardSlow: reg.Histogram("trackfm_guard_slow_cycles",
				"Guard slow-path latency in simulated cycles.", nil),
			Failover: reg.Histogram("trackfm_replica_failover_cycles",
				"Latency of replicated fetches that needed at least one failover, in clock cycles of the replica set's clock.", nil),
			LockWait: reg.Histogram("trackfm_lock_wait_cycles",
				"Contended stripe-lock wait time, wall nanoseconds converted to cycles at the simulated frequency.", nil),
			DeadlineMiss: reg.Histogram("trackfm_deadline_miss_cycles",
				"Overrun of deadline-missing remote operations, in simulated cycles past the budget.", nil),
			TierDecompress: reg.Histogram("trackfm_tier_decompress_cycles",
				"Latency of promotions served from the compressed tier, in simulated cycles.", nil),
		}
		e.obs.registry = reg
		e.obs.lat = lat
	})
}

// Metrics returns the Env's metrics registry, creating it on first use.
// Every Counters field is pre-registered as a trackfm_* counter reading
// the canonical atomic value, the clock as a gauge, and the Latencies
// histograms; subsystems wired to this Env (fabric stats, replica sets,
// stores) add their own metrics via their Register methods.
func (e *Env) Metrics() *obs.Registry {
	e.initObs()
	return e.obs.registry
}

// Lat returns the Env's latency histograms, creating the registry wiring
// on first use. Runtimes time an operation by sampling Clock.Cycles()
// around it and observing the difference — simulated time, so the
// distributions are deterministic for a deterministic workload.
func (e *Env) Lat() *Latencies {
	e.initObs()
	return e.obs.lat
}

// resetObs zeroes the latency histograms if the registry was ever built.
func (e *Env) resetObs() {
	if e.obs.lat == nil {
		return
	}
	for _, h := range []*obs.Histogram{
		e.obs.lat.RemoteFetch, e.obs.lat.RemotePush,
		e.obs.lat.Evacuation, e.obs.lat.GuardSlow, e.obs.lat.Failover,
		e.obs.lat.LockWait, e.obs.lat.DeadlineMiss, e.obs.lat.TierDecompress,
	} {
		h.Reset()
	}
}
