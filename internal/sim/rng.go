package sim

// RNG is a small deterministic pseudo-random generator (xorshift64*) used
// by workload generators. It avoids math/rand so that traces are stable
// across Go releases and so generators can be embedded in value types
// without locking.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. A zero seed is replaced by
// a fixed non-zero constant because xorshift has an all-zero fixed point.
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &RNG{state: seed}
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Intn returns a pseudo-random int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn called with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Fork derives an independent generator from this one's stream. Components
// that each need private randomness (e.g. a transport's retry jitter and a
// fault injector sharing one experiment seed) fork the experiment RNG so
// their draws do not interleave and perturb each other's sequences.
func (r *RNG) Fork() *RNG {
	return NewRNG(r.Uint64())
}

// Float64 returns a pseudo-random float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}
