package sim

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestClockAdvance(t *testing.T) {
	var c Clock
	if c.Cycles() != 0 {
		t.Fatalf("zero clock has %d cycles", c.Cycles())
	}
	c.Advance(100)
	c.Advance(50)
	if got := c.Cycles(); got != 150 {
		t.Fatalf("Cycles() = %d, want 150", got)
	}
	c.Reset()
	if c.Cycles() != 0 {
		t.Fatalf("Reset did not zero the clock")
	}
}

func TestClockElapsed(t *testing.T) {
	var c Clock
	c.Advance(Frequency) // exactly one second of cycles
	if got := c.Elapsed(); got != time.Second {
		t.Fatalf("Elapsed() = %v, want 1s", got)
	}
	if got := c.Seconds(); math.Abs(got-1.0) > 1e-12 {
		t.Fatalf("Seconds() = %v, want 1.0", got)
	}
}

func TestClockString(t *testing.T) {
	var c Clock
	c.Advance(2_400_000)
	if got := c.String(); got != "2400000 cycles (0.001s @2.4GHz)" {
		t.Fatalf("String() = %q", got)
	}
}

func TestDefaultCostsMatchPaperTables(t *testing.T) {
	m := DefaultCosts()
	// Table 1 medians.
	cases := []struct {
		name string
		got  uint64
		want uint64
	}{
		{"fast read cached", m.FastGuardReadCached, 21},
		{"fast write cached", m.FastGuardWriteCached, 21},
		{"fast read uncached", m.FastGuardReadUncached, 297},
		{"fast write uncached", m.FastGuardWriteUncached, 309},
		{"slow read cached", m.SlowGuardReadCached, 144},
		{"slow write cached", m.SlowGuardWriteCached, 159},
		{"slow read uncached", m.SlowGuardReadUncached, 453},
		{"slow write uncached", m.SlowGuardWriteUncached, 432},
		{"swap fault local", m.SwapFaultLocal, 1_300},
		{"swap fault remote", m.SwapFaultRemote, 34_000},
		{"local load/store", m.LocalLoadStore, 36},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("%s = %d, want %d", c.name, c.got, c.want)
		}
	}
}

func TestRemoteFetchCalibration(t *testing.T) {
	// Table 2: a remote 4KB fetch should land near 35K cycles for the TCP
	// backend and near 34K for RDMA.
	m := DefaultCosts()
	tcp := m.RemoteObjectFetch(4096)
	if tcp < 34_000 || tcp > 36_000 {
		t.Errorf("TCP remote 4KB fetch = %d cycles, want ~35K", tcp)
	}
	rdma := m.RemotePageFetch(4096)
	if rdma >= tcp {
		t.Errorf("RDMA fetch (%d) should be cheaper than TCP fetch (%d)", rdma, tcp)
	}
	// The composed Fastswap major fault must land on the paper's Table 2
	// value: kernel fault path + RDMA page pull ~= 34K cycles.
	major := m.SwapFaultLocal + rdma
	if major < 33_000 || major > 35_000 {
		t.Errorf("composed major fault = %d cycles, want ~%d", major, m.SwapFaultRemote)
	}
	// And the composed TrackFM remote slow guard ~= 35K cycles.
	slowRemote := m.SlowGuardReadUncached + m.RemoteObjectFetch(4096)
	if slowRemote < 34_500 || slowRemote > 36_000 {
		t.Errorf("composed remote slow guard = %d cycles, want ~35K", slowRemote)
	}
}

func TestTransferCyclesMonotone(t *testing.T) {
	m := DefaultCosts()
	if m.TransferCycles(0) != 0 {
		t.Fatalf("TransferCycles(0) != 0")
	}
	if m.TransferCycles(-5) != 0 {
		t.Fatalf("TransferCycles(-5) != 0")
	}
	prev := uint64(0)
	for _, n := range []int{64, 256, 4096, 1 << 20} {
		c := m.TransferCycles(n)
		if c <= prev {
			t.Fatalf("TransferCycles not strictly increasing at %d bytes", n)
		}
		prev = c
	}
	// 25 Gb/s at 2.4GHz: 1MiB should take ~805K cycles.
	c := m.TransferCycles(1 << 20)
	if c < 700_000 || c > 900_000 {
		t.Errorf("TransferCycles(1MiB) = %d, want ~805K", c)
	}
}

func TestCountersAggregates(t *testing.T) {
	var c Counters
	c.FastPathGuards = 10
	c.SlowPathGuards = 4
	c.MinorFaults = 3
	c.MajorFaults = 7
	c.BytesFetched = 4096
	if c.Guards() != 14 {
		t.Errorf("Guards() = %d, want 14", c.Guards())
	}
	if c.Faults() != 10 {
		t.Errorf("Faults() = %d, want 10", c.Faults())
	}
	if got := c.Amplification(2048); got != 2.0 {
		t.Errorf("Amplification = %v, want 2.0", got)
	}
	if got := c.Amplification(0); got != 0 {
		t.Errorf("Amplification(0) = %v, want 0", got)
	}
	c.Reset()
	if c.Guards() != 0 || c.BytesFetched != 0 {
		t.Errorf("Reset left state behind: %+v", c)
	}
}

func TestCountersString(t *testing.T) {
	var c Counters
	if got := c.String(); got != "" {
		t.Errorf("empty counters String() = %q, want empty", got)
	}
	c.FastPathGuards = 2
	c.MajorFaults = 1
	s := c.String()
	if s != "fast=2 majorFault=1" {
		t.Errorf("String() = %q", s)
	}
}

func TestEnvReset(t *testing.T) {
	e := NewEnv()
	e.Clock.Advance(99)
	e.Counters.Mallocs = 3
	e.Reset()
	if e.Clock.Cycles() != 0 || e.Counters.Mallocs != 0 {
		t.Fatalf("Env.Reset incomplete")
	}
	if e.Costs.FastGuardReadCached != 21 {
		t.Fatalf("Env.Reset clobbered the cost model")
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed RNGs diverged at step %d", i)
		}
	}
	c := NewRNG(43)
	same := 0
	a = NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different-seed RNGs coincided %d/1000 times", same)
	}
}

func TestRNGZeroSeed(t *testing.T) {
	r := NewRNG(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatalf("zero-seeded RNG stuck at zero")
	}
}

func TestRNGIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestRNGRanges(t *testing.T) {
	r := NewRNG(7)
	if err := quick.Check(func(nRaw uint16) bool {
		n := int(nRaw%1000) + 1
		v := r.Intn(n)
		return v >= 0 && v < n
	}, nil); err != nil {
		t.Error(err)
	}
	for i := 0; i < 10_000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
	}
}

func TestRNGFloat64Uniformish(t *testing.T) {
	r := NewRNG(123)
	var sum float64
	const n = 100_000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}
