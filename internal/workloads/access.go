// Package workloads provides the applications and microbenchmarks of the
// paper's evaluation, plus the access-layer abstraction that lets each
// workload run unchanged against TrackFM, Fastswap, or local-only memory.
//
// Two styles exist, mirroring the paper's methodology:
//
//   - IR workloads (stream, kmeans, analytics, nas) are built as mini-IR
//     programs and transformed by the real compiler pipeline — guards and
//     loop chunking are decided by the passes, not hand-placed.
//   - Direct workloads (hashmap, kv) call the runtimes through the
//     Accessor interface defined here, playing the role of an
//     already-transformed application; this is needed where variable-size
//     allocation patterns (slab allocators) dominate.
package workloads

import (
	"trackfm/internal/core"
	"trackfm/internal/fastswap"
	"trackfm/internal/sim"
)

// Accessor is the memory interface direct-style workloads are written
// against. Addresses are opaque; each implementation mints its own.
type Accessor interface {
	// Env exposes the clock/counters this accessor charges.
	Env() *sim.Env
	// Malloc allocates n heap bytes.
	Malloc(n uint64) uint64
	// LoadU64 / StoreU64 perform one guarded/faulting 8-byte access.
	LoadU64(addr uint64) uint64
	StoreU64(addr uint64, v uint64)
	// Load / Store move arbitrary byte ranges.
	Load(addr uint64, dst []byte)
	Store(addr uint64, src []byte)
	// SeqReader returns an optimized sequential cursor over fixed-size
	// elements starting at base — chunking+prefetch for TrackFM, plain
	// accesses elsewhere (the kernel gets its own readahead on faults).
	SeqReader(base uint64, elemSize int) SeqReader
	// Reset evacuates all cached state so a measurement starts cold.
	Reset()
}

// SeqReader streams fixed-size elements sequentially.
type SeqReader interface {
	// Next reads element i into dst.
	Next(i uint64, dst []byte)
	// Close releases cursor state.
	Close()
}

// TrackFMAccessor adapts core.Runtime.
type TrackFMAccessor struct {
	RT *core.Runtime
}

// Env implements Accessor.
func (a *TrackFMAccessor) Env() *sim.Env { return a.RT.Env() }

// Malloc implements Accessor.
func (a *TrackFMAccessor) Malloc(n uint64) uint64 { return uint64(a.RT.MustMalloc(n)) }

// LoadU64 implements Accessor.
func (a *TrackFMAccessor) LoadU64(addr uint64) uint64 { return a.RT.LoadU64(core.Ptr(addr)) }

// StoreU64 implements Accessor.
func (a *TrackFMAccessor) StoreU64(addr uint64, v uint64) { a.RT.StoreU64(core.Ptr(addr), v) }

// Load implements Accessor.
func (a *TrackFMAccessor) Load(addr uint64, dst []byte) { a.RT.Load(core.Ptr(addr), dst) }

// Store implements Accessor.
func (a *TrackFMAccessor) Store(addr uint64, src []byte) { a.RT.Store(core.Ptr(addr), src) }

// SeqReader implements Accessor with a chunked, prefetching cursor.
func (a *TrackFMAccessor) SeqReader(base uint64, elemSize int) SeqReader {
	return &tfmSeqReader{cur: a.RT.NewCursor(core.Ptr(base), elemSize, true)}
}

// Reset implements Accessor.
func (a *TrackFMAccessor) Reset() { a.RT.EvacuateAll() }

type tfmSeqReader struct{ cur *core.Cursor }

func (r *tfmSeqReader) Next(i uint64, dst []byte) { r.cur.Access(i, dst, false) }
func (r *tfmSeqReader) Close()                    { r.cur.Close() }

// FastswapAccessor adapts fastswap.Swap.
type FastswapAccessor struct {
	Swap *fastswap.Swap
}

// Env implements Accessor.
func (a *FastswapAccessor) Env() *sim.Env { return a.Swap.Env() }

// Malloc implements Accessor.
func (a *FastswapAccessor) Malloc(n uint64) uint64 { return a.Swap.MustMalloc(n) }

// LoadU64 implements Accessor.
func (a *FastswapAccessor) LoadU64(addr uint64) uint64 { return a.Swap.LoadU64(addr) }

// StoreU64 implements Accessor.
func (a *FastswapAccessor) StoreU64(addr uint64, v uint64) { a.Swap.StoreU64(addr, v) }

// Load implements Accessor.
func (a *FastswapAccessor) Load(addr uint64, dst []byte) { a.Swap.Load(addr, dst) }

// Store implements Accessor.
func (a *FastswapAccessor) Store(addr uint64, src []byte) { a.Swap.Store(addr, src) }

// SeqReader implements Accessor; the kernel has no cursor machinery, its
// readahead engages on the fault stream instead.
func (a *FastswapAccessor) SeqReader(base uint64, elemSize int) SeqReader {
	return &fsSeqReader{a: a, base: base, elem: uint64(elemSize)}
}

// Reset implements Accessor.
func (a *FastswapAccessor) Reset() { a.Swap.EvacuateAll() }

type fsSeqReader struct {
	a    *FastswapAccessor
	base uint64
	elem uint64
}

func (r *fsSeqReader) Next(i uint64, dst []byte) { r.a.Load(r.base+i*r.elem, dst) }
func (r *fsSeqReader) Close()                    {}

// LocalAccessor is the local-only baseline: a plain arena charging one
// load/store cost per 64 bytes touched.
type LocalAccessor struct {
	env *sim.Env
	buf []byte
}

// NewLocalAccessor returns an empty local accessor charging env.
func NewLocalAccessor(env *sim.Env) *LocalAccessor {
	return &LocalAccessor{env: env}
}

// Env implements Accessor.
func (a *LocalAccessor) Env() *sim.Env { return a.env }

// Malloc implements Accessor. Address 0 is reserved so callers can use 0
// as "nil"; the first allocation starts at 64.
func (a *LocalAccessor) Malloc(n uint64) uint64 {
	const align = 16
	if len(a.buf) == 0 {
		a.buf = make([]byte, 64)
	}
	off := (uint64(len(a.buf)) + align - 1) &^ (align - 1)
	a.buf = append(a.buf, make([]byte, off+n-uint64(len(a.buf)))...)
	return off
}

func (a *LocalAccessor) charge(n int) {
	a.env.Clock.Advance(uint64((n+63)/64) * a.env.Costs.LocalLoadStore)
}

// LoadU64 implements Accessor.
func (a *LocalAccessor) LoadU64(addr uint64) uint64 {
	a.charge(8)
	return le64(a.buf[addr : addr+8])
}

// StoreU64 implements Accessor.
func (a *LocalAccessor) StoreU64(addr uint64, v uint64) {
	a.charge(8)
	putLE64(a.buf[addr:addr+8], v)
}

// Load implements Accessor.
func (a *LocalAccessor) Load(addr uint64, dst []byte) {
	a.charge(len(dst))
	copy(dst, a.buf[addr:addr+uint64(len(dst))])
}

// Store implements Accessor.
func (a *LocalAccessor) Store(addr uint64, src []byte) {
	a.charge(len(src))
	copy(a.buf[addr:addr+uint64(len(src))], src)
}

// SeqReader implements Accessor.
func (a *LocalAccessor) SeqReader(base uint64, elemSize int) SeqReader {
	return &localSeqReader{a: a, base: base, elem: uint64(elemSize)}
}

// Reset implements Accessor (nothing to evacuate).
func (a *LocalAccessor) Reset() {}

type localSeqReader struct {
	a    *LocalAccessor
	base uint64
	elem uint64
}

func (r *localSeqReader) Next(i uint64, dst []byte) { r.a.Load(r.base+i*r.elem, dst) }
func (r *localSeqReader) Close()                    {}

func le64(b []byte) uint64 {
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

func putLE64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

var (
	_ Accessor = (*TrackFMAccessor)(nil)
	_ Accessor = (*FastswapAccessor)(nil)
	_ Accessor = (*LocalAccessor)(nil)
)
