package workloads

import (
	"bytes"
	"testing"

	"trackfm/internal/core"
	"trackfm/internal/fastswap"
	"trackfm/internal/sim"
)

func testAccessors(t *testing.T) map[string]Accessor {
	t.Helper()
	rt, err := core.NewRuntime(core.Config{
		Env: sim.NewEnv(), ObjectSize: 256, HeapSize: 1 << 20, LocalBudget: 1 << 13,
	})
	if err != nil {
		t.Fatalf("NewRuntime: %v", err)
	}
	sw, err := fastswap.New(fastswap.Config{
		Env: sim.NewEnv(), HeapSize: 1 << 20, LocalBudget: 1 << 14,
	})
	if err != nil {
		t.Fatalf("fastswap.New: %v", err)
	}
	return map[string]Accessor{
		"trackfm":  &TrackFMAccessor{RT: rt},
		"fastswap": &FastswapAccessor{Swap: sw},
		"local":    NewLocalAccessor(sim.NewEnv()),
	}
}

func TestAccessorContract(t *testing.T) {
	for name, acc := range testAccessors(t) {
		name, acc := name, acc
		t.Run(name, func(t *testing.T) {
			if acc.Env() == nil {
				t.Fatalf("nil Env")
			}
			base := acc.Malloc(1 << 12)
			// U64 round trip.
			acc.StoreU64(base+8, 0xABCD)
			if got := acc.LoadU64(base + 8); got != 0xABCD {
				t.Fatalf("LoadU64 = %#x", got)
			}
			// Bulk round trip spanning objects/pages.
			payload := bytes.Repeat([]byte{7, 1}, 600)
			acc.Store(base+100, payload)
			got := make([]byte, len(payload))
			acc.Load(base+100, got)
			if !bytes.Equal(got, payload) {
				t.Fatalf("bulk round trip failed")
			}
			// Sequential reader agrees with element loads.
			arr := acc.Malloc(64 * 8)
			for i := uint64(0); i < 64; i++ {
				acc.StoreU64(arr+i*8, i*3)
			}
			r := acc.SeqReader(arr, 8)
			var buf [8]byte
			for i := uint64(0); i < 64; i++ {
				r.Next(i, buf[:])
				v := le64(buf[:])
				if v != i*3 {
					t.Fatalf("SeqReader[%d] = %d, want %d", i, v, i*3)
				}
			}
			r.Close()
			// Reset must not lose data.
			acc.Reset()
			if got := acc.LoadU64(base + 8); got != 0xABCD {
				t.Fatalf("data lost across Reset: %#x", got)
			}
		})
	}
}

func TestTrackFMAccessorChargesGuards(t *testing.T) {
	acc := testAccessors(t)["trackfm"].(*TrackFMAccessor)
	base := acc.Malloc(64)
	acc.StoreU64(base, 1)
	if acc.Env().Counters.Guards() == 0 {
		t.Fatalf("no guards charged")
	}
}

func TestFastswapAccessorChargesFaults(t *testing.T) {
	acc := testAccessors(t)["fastswap"].(*FastswapAccessor)
	base := acc.Malloc(1 << 16)
	for off := uint64(0); off < 1<<16; off += 4096 {
		acc.StoreU64(base+off, 1)
	}
	if acc.Env().Counters.Faults() == 0 {
		t.Fatalf("no faults charged")
	}
}

func TestLocalAccessorReservesNil(t *testing.T) {
	acc := NewLocalAccessor(sim.NewEnv())
	if a := acc.Malloc(8); a == 0 {
		t.Fatalf("first allocation landed at address 0")
	}
}

func TestLocalAccessorChargesPerLine(t *testing.T) {
	env := sim.NewEnv()
	acc := NewLocalAccessor(env)
	base := acc.Malloc(256)
	before := env.Clock.Cycles()
	acc.Load(base, make([]byte, 256)) // 4 cache lines
	if got := env.Clock.Cycles() - before; got != 4*env.Costs.LocalLoadStore {
		t.Fatalf("256B load charged %d cycles", got)
	}
}
