// Package analytics builds the paper's data-analytics application (§4.5,
// Figs. 14-15) as a mini-IR program: an NYC-taxi-style exploratory
// analysis over a column-store dataframe. The original uses a Kaggle
// dataset; we generate synthetic trips with the same column schema and
// cardinalities, which preserves the access pattern the evaluation
// depends on — tight column scans with high spatial locality, plus
// aggregation loops over small per-group row collections (the loops whose
// indiscriminate chunking Fig. 15 punishes).
package analytics

import "trackfm/internal/ir"

// Config sizes the dataframe.
type Config struct {
	// Rows is the trip count (paper's working set is 31 GB; scale down).
	Rows int64
}

// Groups is the number of (hour, passenger-count) aggregation groups.
const (
	hours     = 24
	paxValues = 6
	Groups    = hours * paxValues
)

// WorkingSetBytes reports the far-heap footprint: four data columns, the
// group index (offsets, counts, row lists), and group accumulators.
func (c Config) WorkingSetBytes() uint64 {
	cols := uint64(4 * c.Rows * 8)
	index := uint64((2*Groups+1)*8) + uint64(c.Rows*8)
	accum := uint64(3 * Groups * 8)
	return cols + index + accum
}

// Program builds the analysis. Columns (heap, 8B integers):
//
//	hour[r]  = (r*7) % 24
//	pax[r]   = (r*13) % 6 + 1
//	dist[r]  = (r*37) % 5000        (hundredths of a mile)
//	fare[r]  = 250 + dist/2 + pax*50 (cents)
//
// Queries, mirroring the Kaggle notebook's shape:
//
//	Q1  count trips with dist > 2500            (column scan)
//	Q2  total fare per hour                     (scan + indexed add)
//	Q3  build per-(hour,pax) row lists          (two-pass group index)
//	Q4  per-group max fare and mean distance    (many small loops)
//
// Returns a checksum over all query outputs.
func Program(c Config) *ir.Program {
	p := ir.NewProgram()
	n := c.Rows

	col := func(name string, r ir.Expr) ir.Expr { return ir.Idx(ir.V(name), r, 8) }

	body := []ir.Stmt{
		&ir.Malloc{Dst: "hour", Size: ir.C(n * 8)},
		&ir.Malloc{Dst: "pax", Size: ir.C(n * 8)},
		&ir.Malloc{Dst: "dist", Size: ir.C(n * 8)},
		&ir.Malloc{Dst: "fare", Size: ir.C(n * 8)},

		// Generate the synthetic trips.
		ir.Loop("r", ir.C(0), ir.C(n),
			ir.Let("h", ir.B(ir.OpMod, ir.Mul(ir.V("r"), ir.C(7)), ir.C(hours))),
			ir.Let("px", ir.Add(ir.B(ir.OpMod, ir.Mul(ir.V("r"), ir.C(13)), ir.C(paxValues)), ir.C(1))),
			ir.Let("ds", ir.B(ir.OpMod, ir.Mul(ir.V("r"), ir.C(37)), ir.C(5000))),
			ir.St(col("hour", ir.V("r")), ir.V("h")),
			ir.St(col("pax", ir.V("r")), ir.V("px")),
			ir.St(col("dist", ir.V("r")), ir.V("ds")),
			ir.St(col("fare", ir.V("r")),
				ir.Add(ir.Add(ir.C(250), ir.B(ir.OpDiv, ir.V("ds"), ir.C(2))),
					ir.Mul(ir.V("px"), ir.C(50)))),
		),

		// Q1: long-trip count (tight scan, high spatial locality).
		ir.Let("longTrips", ir.C(0)),
		ir.Loop("r", ir.C(0), ir.C(n),
			&ir.If{Cond: ir.B(ir.OpGt, ir.Ld(col("dist", ir.V("r"))), ir.C(2500)), Then: []ir.Stmt{
				ir.Let("longTrips", ir.Add(ir.V("longTrips"), ir.C(1))),
			}},
		),

		// Q2: fare by hour (scan with indexed accumulation).
		&ir.Malloc{Dst: "fareByHour", Size: ir.C(hours * 8)},
		ir.Loop("h0", ir.C(0), ir.C(hours),
			ir.St(ir.Idx(ir.V("fareByHour"), ir.V("h0"), 8), ir.C(0)),
		),
		ir.Loop("r", ir.C(0), ir.C(n),
			ir.Let("h", ir.Ld(col("hour", ir.V("r")))),
			ir.St(ir.Idx(ir.V("fareByHour"), ir.V("h"), 8),
				ir.Add(ir.Ld(ir.Idx(ir.V("fareByHour"), ir.V("h"), 8)),
					ir.Ld(col("fare", ir.V("r"))))),
		),

		// Q3: group index over (hour, pax) — counting sort of row ids.
		&ir.Malloc{Dst: "gCount", Size: ir.C(Groups * 8)},
		&ir.Malloc{Dst: "gOff", Size: ir.C((Groups + 1) * 8)},
		&ir.Malloc{Dst: "gRows", Size: ir.C(n * 8)},
		ir.Loop("g0", ir.C(0), ir.C(Groups),
			ir.St(ir.Idx(ir.V("gCount"), ir.V("g0"), 8), ir.C(0)),
		),
		ir.Loop("r", ir.C(0), ir.C(n),
			ir.Let("g", ir.Add(ir.Mul(ir.Ld(col("hour", ir.V("r"))), ir.C(paxValues)),
				ir.Sub(ir.Ld(col("pax", ir.V("r"))), ir.C(1)))),
			ir.St(ir.Idx(ir.V("gCount"), ir.V("g"), 8),
				ir.Add(ir.Ld(ir.Idx(ir.V("gCount"), ir.V("g"), 8)), ir.C(1))),
		),
		ir.St(ir.Idx(ir.V("gOff"), ir.C(0), 8), ir.C(0)),
		ir.Loop("g1", ir.C(0), ir.C(Groups),
			ir.St(ir.Idx(ir.V("gOff"), ir.Add(ir.V("g1"), ir.C(1)), 8),
				ir.Add(ir.Ld(ir.Idx(ir.V("gOff"), ir.V("g1"), 8)),
					ir.Ld(ir.Idx(ir.V("gCount"), ir.V("g1"), 8)))),
		),
		// Reuse gCount as the per-group fill cursor (reset to 0 first).
		ir.Loop("g2", ir.C(0), ir.C(Groups),
			ir.St(ir.Idx(ir.V("gCount"), ir.V("g2"), 8), ir.C(0)),
		),
		ir.Loop("r", ir.C(0), ir.C(n),
			ir.Let("g", ir.Add(ir.Mul(ir.Ld(col("hour", ir.V("r"))), ir.C(paxValues)),
				ir.Sub(ir.Ld(col("pax", ir.V("r"))), ir.C(1)))),
			ir.Let("pos", ir.Add(ir.Ld(ir.Idx(ir.V("gOff"), ir.V("g"), 8)),
				ir.Ld(ir.Idx(ir.V("gCount"), ir.V("g"), 8)))),
			ir.St(ir.Idx(ir.V("gRows"), ir.V("pos"), 8), ir.V("r")),
			ir.St(ir.Idx(ir.V("gCount"), ir.V("g"), 8),
				ir.Add(ir.Ld(ir.Idx(ir.V("gCount"), ir.V("g"), 8)), ir.C(1))),
		),

		// Q4: per-group aggregations — the small-collection loops whose
		// indiscriminate chunking Fig. 15 shows to be harmful.
		&ir.Malloc{Dst: "gMaxFare", Size: ir.C(Groups * 8)},
		&ir.Malloc{Dst: "gMeanDist", Size: ir.C(Groups * 8)},
		ir.Loop("g", ir.C(0), ir.C(Groups),
			ir.Let("start", ir.Ld(ir.Idx(ir.V("gOff"), ir.V("g"), 8))),
			ir.Let("end", ir.Ld(ir.Idx(ir.V("gOff"), ir.Add(ir.V("g"), ir.C(1)), 8))),
			ir.Let("maxFare", ir.C(0)),
			ir.Let("sumDist", ir.C(0)),
			ir.Loop("t", ir.V("start"), ir.V("end"),
				ir.Let("row", ir.Ld(ir.Idx(ir.V("gRows"), ir.V("t"), 8))),
				ir.Let("f", ir.Ld(col("fare", ir.V("row")))),
				&ir.If{Cond: ir.B(ir.OpGt, ir.V("f"), ir.V("maxFare")), Then: []ir.Stmt{
					ir.Let("maxFare", ir.V("f")),
				}},
				ir.Let("sumDist", ir.Add(ir.V("sumDist"), ir.Ld(col("dist", ir.V("row"))))),
			),
			ir.St(ir.Idx(ir.V("gMaxFare"), ir.V("g"), 8), ir.V("maxFare")),
			&ir.If{Cond: ir.B(ir.OpGt, ir.Sub(ir.V("end"), ir.V("start")), ir.C(0)), Then: []ir.Stmt{
				ir.St(ir.Idx(ir.V("gMeanDist"), ir.V("g"), 8),
					ir.B(ir.OpDiv, ir.V("sumDist"), ir.Sub(ir.V("end"), ir.V("start")))),
			}, Else: []ir.Stmt{
				ir.St(ir.Idx(ir.V("gMeanDist"), ir.V("g"), 8), ir.C(0)),
			}},
		),

		// Checksum all query outputs.
		ir.Let("chk", ir.V("longTrips")),
		ir.Loop("h", ir.C(0), ir.C(hours),
			ir.Let("chk", ir.Add(ir.V("chk"), ir.Ld(ir.Idx(ir.V("fareByHour"), ir.V("h"), 8)))),
		),
		ir.Loop("g", ir.C(0), ir.C(Groups),
			ir.Let("chk", ir.Add(ir.V("chk"),
				ir.Add(ir.Ld(ir.Idx(ir.V("gMaxFare"), ir.V("g"), 8)),
					ir.Ld(ir.Idx(ir.V("gMeanDist"), ir.V("g"), 8))))),
		),
		&ir.Return{E: ir.V("chk")},
	}
	p.AddFunc(ir.Fn("main", nil, body...))
	return p
}
