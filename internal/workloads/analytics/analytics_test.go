package analytics

import (
	"testing"

	"trackfm/internal/compiler"
	"trackfm/internal/core"
	"trackfm/internal/fastswap"
	"trackfm/internal/interp"
	"trackfm/internal/sim"
)

var small = Config{Rows: 3000}

func localChecksum(t *testing.T, cfg Config) int64 {
	t.Helper()
	prog := Program(cfg)
	res, err := interp.Run(prog, interp.NewLocalBackend(sim.NewEnv()), interp.Options{})
	if err != nil {
		t.Fatalf("local run: %v", err)
	}
	return res.Return
}

func runTFM(t *testing.T, cfg Config, opts compiler.Options, budget uint64) (int64, *sim.Env) {
	t.Helper()
	prog := Program(cfg)
	if _, err := compiler.Compile(prog, opts); err != nil {
		t.Fatalf("Compile: %v", err)
	}
	env := sim.NewEnv()
	rt, err := core.NewRuntime(core.Config{
		Env: env, ObjectSize: opts.ObjectSize, HeapSize: 1 << 26, LocalBudget: budget,
	})
	if err != nil {
		t.Fatalf("NewRuntime: %v", err)
	}
	res, err := interp.Run(prog, interp.NewTrackFMBackend(rt), interp.Options{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res.Return, env
}

func TestChecksumStableAcrossBackends(t *testing.T) {
	want := localChecksum(t, small)
	if want == 0 {
		t.Fatalf("degenerate checksum 0")
	}

	got, _ := runTFM(t, small, compiler.Options{Chunking: compiler.ChunkCostModel, ObjectSize: 4096, Prefetch: true}, 1<<20)
	if got != want {
		t.Fatalf("trackfm checksum %d != local %d", got, want)
	}

	prog := Program(small)
	if _, err := compiler.Compile(prog, compiler.Options{Chunking: compiler.ChunkNone}); err != nil {
		t.Fatalf("Compile: %v", err)
	}
	sw, err := fastswap.New(fastswap.Config{Env: sim.NewEnv(), HeapSize: 1 << 26, LocalBudget: 1 << 20})
	if err != nil {
		t.Fatalf("fastswap.New: %v", err)
	}
	res, err := interp.Run(prog, interp.NewFastswapBackend(sw), interp.Options{})
	if err != nil {
		t.Fatalf("fastswap run: %v", err)
	}
	if res.Return != want {
		t.Fatalf("fastswap checksum %d != local %d", res.Return, want)
	}
}

func TestAIFMBackendAgrees(t *testing.T) {
	want := localChecksum(t, small)
	prog := Program(small)
	// The AIFM comparator runs the hand-ported version: no guards, but
	// the chunk annotations mark where the programmer would use library
	// iterators.
	if _, err := compiler.Compile(prog, compiler.Options{Chunking: compiler.ChunkCostModel, ObjectSize: 4096, Prefetch: true}); err != nil {
		t.Fatalf("Compile: %v", err)
	}
	be, err := interp.NewAIFMBackend(interp.AIFMConfig{
		Env: sim.NewEnv(), ObjectSize: 4096, HeapSize: 1 << 26, LocalBudget: 1 << 20,
	})
	if err != nil {
		t.Fatalf("NewAIFMBackend: %v", err)
	}
	res, err := interp.Run(prog, be, interp.Options{})
	if err != nil {
		t.Fatalf("aifm run: %v", err)
	}
	if res.Return != want {
		t.Fatalf("aifm checksum %d != local %d", res.Return, want)
	}
	if be.Env().Counters.Guards() != 0 {
		t.Fatalf("AIFM comparator executed guards")
	}
}

func TestAIFMFasterThanTrackFMButWithin2x(t *testing.T) {
	// Fig. 14 shape at unit-test scale: AIFM (no guards) is the
	// ceiling; TrackFM must be close behind (paper: within 10% when
	// memory-constrained; we assert a loose band here, the calibrated
	// check lives in the bench harness).
	cfg := Config{Rows: 4000}
	budget := cfg.WorkingSetBytes() / 4

	_, envT := runTFM(t, cfg, compiler.Options{Chunking: compiler.ChunkCostModel, ObjectSize: 4096, Prefetch: true}, budget)

	prog := Program(cfg)
	if _, err := compiler.Compile(prog, compiler.Options{Chunking: compiler.ChunkCostModel, ObjectSize: 4096, Prefetch: true}); err != nil {
		t.Fatalf("Compile: %v", err)
	}
	be, err := interp.NewAIFMBackend(interp.AIFMConfig{
		Env: sim.NewEnv(), ObjectSize: 4096, HeapSize: 1 << 26, LocalBudget: budget,
	})
	if err != nil {
		t.Fatalf("NewAIFMBackend: %v", err)
	}
	if _, err := interp.Run(prog, be, interp.Options{}); err != nil {
		t.Fatalf("aifm run: %v", err)
	}

	tfm := float64(envT.Clock.Cycles())
	aifm := float64(be.Env().Clock.Cycles())
	// TrackFM pays guards AIFM does not, so it cannot be more than
	// marginally faster (its compiler-directed prefetch can slightly
	// beat AIFM's runtime stride detector), and the paper's headline
	// claim bounds it from above: near parity when memory-constrained.
	if tfm < 0.9*aifm {
		t.Fatalf("TrackFM (%v) dramatically beat the AIFM ceiling (%v): cost accounting broken", tfm, aifm)
	}
	if tfm > 2*aifm {
		t.Fatalf("TrackFM %.0f vs AIFM %.0f: more than 2x apart", tfm, aifm)
	}
}

func TestIndiscriminateChunkingHurtsAggregations(t *testing.T) {
	// Fig. 15 shape: chunking all loops (including the small per-group
	// aggregation loops) is slower than cost-model chunking.
	cfg := Config{Rows: 3000}
	budget := cfg.WorkingSetBytes() // all local: isolates guard effects

	_, envAll := runTFM(t, cfg, compiler.Options{Chunking: compiler.ChunkAll, ObjectSize: 4096}, budget)
	_, envCM := runTFM(t, cfg, compiler.Options{Chunking: compiler.ChunkCostModel, ObjectSize: 4096}, budget)

	if envCM.Clock.Cycles() >= envAll.Clock.Cycles() {
		t.Fatalf("cost-model chunking (%d) not faster than all-loops (%d)",
			envCM.Clock.Cycles(), envAll.Clock.Cycles())
	}
}

func TestGroupLoopsAreSmall(t *testing.T) {
	// The Q4 structure must actually produce small per-group loops
	// (below the chunking crossover) — otherwise Fig. 15 is vacuous.
	prog := Program(small)
	prof := compiler.NewProfile()
	if _, err := interp.Run(prog, interp.NewLocalBackend(sim.NewEnv()), interp.Options{Profile: prof}); err != nil {
		t.Fatalf("profiling run: %v", err)
	}
	smallLoops := 0
	for l := range prof.Entries {
		if tr, ok := prof.AvgTrips(l); ok && tr > 0 && tr < 100 {
			smallLoops++
		}
	}
	if smallLoops == 0 {
		t.Fatalf("no small aggregation loops observed")
	}
}

func TestWorkingSetBytes(t *testing.T) {
	if small.WorkingSetBytes() < uint64(4*small.Rows*8) {
		t.Fatalf("WorkingSetBytes too small")
	}
}
