package dist

import (
	"math"
	"testing"
)

func TestZipfValidation(t *testing.T) {
	if _, err := NewZipf(0, 1.0, 1); err == nil {
		t.Errorf("zero-item Zipf accepted")
	}
	if _, err := NewZipf(10, -1, 1); err == nil {
		t.Errorf("negative skew accepted")
	}
	if _, err := NewZipf(10, 1.0, 1); err != nil {
		t.Errorf("skew exactly 1 rejected: %v", err)
	}
}

func TestZipfRange(t *testing.T) {
	z, err := NewZipf(1000, 1.02, 42)
	if err != nil {
		t.Fatalf("NewZipf: %v", err)
	}
	for i := 0; i < 100_000; i++ {
		r := z.Next()
		if r >= 1000 {
			t.Fatalf("rank %d out of range", r)
		}
	}
}

func TestZipfSkewConcentratesMass(t *testing.T) {
	counts := func(s float64) float64 {
		z, err := NewZipf(100_000, s, 7)
		if err != nil {
			t.Fatalf("NewZipf: %v", err)
		}
		hot := 0
		const samples = 200_000
		for i := 0; i < samples; i++ {
			if z.Next() < 100 { // top 0.1% of keys
				hot++
			}
		}
		return float64(hot) / samples
	}
	low := counts(1.01)
	high := counts(1.3)
	if high <= low {
		t.Fatalf("higher skew should concentrate more mass: s=1.01 -> %.3f, s=1.3 -> %.3f", low, high)
	}
	if low < 0.2 {
		t.Fatalf("zipf 1.01 top-0.1%% mass = %.3f, implausibly low", low)
	}
}

func TestZipfRankZeroHottest(t *testing.T) {
	z, _ := NewZipf(10_000, 1.1, 3)
	freq := make(map[uint64]int)
	for i := 0; i < 100_000; i++ {
		freq[z.Next()]++
	}
	if freq[0] <= freq[100] {
		t.Fatalf("rank 0 (%d hits) not hotter than rank 100 (%d hits)", freq[0], freq[100])
	}
}

func TestZipfDeterministic(t *testing.T) {
	a, _ := NewZipf(1000, 1.05, 99)
	b, _ := NewZipf(1000, 1.05, 99)
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatalf("same-seed Zipf diverged at %d", i)
		}
	}
}

func TestZipfTrace(t *testing.T) {
	z, _ := NewZipf(100, 1.02, 5)
	tr := z.Trace(500)
	if len(tr) != 500 {
		t.Fatalf("trace length %d", len(tr))
	}
	for _, r := range tr {
		if r >= 100 {
			t.Fatalf("trace rank %d out of range", r)
		}
	}
}

func TestUSRSizes(t *testing.T) {
	u := NewUSR(1)
	for i := 0; i < 10_000; i++ {
		k := u.KeySize()
		if k != 16 && k != 21 {
			t.Fatalf("key size %d", k)
		}
		v := u.ValueSize()
		switch v {
		case 2, 11, 25, 100, 500, 1000:
		default:
			t.Fatalf("value size %d", v)
		}
	}
}

func TestUSRValueDistributionShape(t *testing.T) {
	u := NewUSR(2)
	count2 := 0
	var sum float64
	const n = 100_000
	for i := 0; i < n; i++ {
		v := u.ValueSize()
		sum += float64(v)
		if v == 2 {
			count2++
		}
	}
	frac2 := float64(count2) / n
	if frac2 < 0.65 || frac2 > 0.75 {
		t.Fatalf("2B value fraction = %.3f, want ~0.70", frac2)
	}
	mean := sum / n
	if math.Abs(mean-u.MeanValueSize()) > 2.0 {
		t.Fatalf("empirical mean %.2f vs analytic %.2f", mean, u.MeanValueSize())
	}
}
