package dist

import "trackfm/internal/sim"

// USR approximates the key/value size distribution of Facebook's USR
// memcached pool (Atikoglu et al., SIGMETRICS '12), which the paper's
// memcached benchmark adopts: keys are short and near-constant, and the
// overwhelming majority of values are tiny (the USR pool is dominated by
// 2-byte values), with a thin tail of larger values. Fine-grained sizes
// like these are exactly what makes page-granular far memory amplify I/O.
type USR struct {
	rng *sim.RNG
}

// NewUSR returns a deterministic size sampler.
func NewUSR(seed uint64) *USR { return &USR{rng: sim.NewRNG(seed)} }

// KeySize samples a key size in bytes. USR keys are 16B or 21B
// (two fixed application formats).
func (u *USR) KeySize() int {
	if u.rng.Intn(100) < 60 {
		return 16
	}
	return 21
}

// ValueSize samples a value size in bytes. The mass sits at 2B with a
// small tail, approximating the published CDF.
func (u *USR) ValueSize() int {
	p := u.rng.Intn(1000)
	switch {
	case p < 700:
		return 2
	case p < 850:
		return 11
	case p < 930:
		return 25
	case p < 975:
		return 100
	case p < 995:
		return 500
	default:
		return 1000
	}
}

// MeanValueSize reports the analytic mean of ValueSize, used to size
// working sets.
func (u *USR) MeanValueSize() float64 {
	return 0.700*2 + 0.150*11 + 0.080*25 + 0.045*100 + 0.020*500 + 0.005*1000
}
