// Package dist provides the workload distributions the paper's evaluation
// uses: the Zipfian key popularity distribution (hashmap and memcached
// benchmarks, skew 1.0-1.3) and the USR key/value size distribution from
// Facebook's memcached study (Atikoglu et al., SIGMETRICS '12).
package dist

import (
	"fmt"
	"math"

	"trackfm/internal/sim"
)

// Zipf samples ranks in [0, n) with probability proportional to
// 1/(rank+1)^s. It uses the Gray et al. incremental method popularized by
// YCSB, which supports any skew s > 0, s != 1 exactly via the generalized
// harmonic numbers (s == 1 is handled by a tiny epsilon shift).
type Zipf struct {
	rng   *sim.RNG
	n     uint64
	s     float64
	zetan float64
	eta   float64
	alpha float64
	half  float64 // 0.5^s
}

// NewZipf builds a sampler over n items with skew s, seeded
// deterministically.
func NewZipf(n uint64, s float64, seed uint64) (*Zipf, error) {
	if n == 0 {
		return nil, fmt.Errorf("dist: Zipf over zero items")
	}
	if s <= 0 {
		return nil, fmt.Errorf("dist: Zipf skew %v must be positive", s)
	}
	if s == 1 {
		s = 1.0000001
	}
	z := &Zipf{rng: sim.NewRNG(seed), n: n, s: s}
	z.zetan = zeta(n, s)
	zeta2 := zeta(2, s)
	z.alpha = 1.0 / (1.0 - s)
	z.eta = (1 - math.Pow(2.0/float64(n), 1-s)) / (1 - zeta2/z.zetan)
	z.half = math.Pow(0.5, s)
	return z, nil
}

// zeta computes the generalized harmonic number H_{n,s}. For large n the
// tail is approximated by the integral, keeping construction O(1)-ish.
func zeta(n uint64, s float64) float64 {
	const exact = 10_000
	var sum float64
	limit := n
	if limit > exact {
		limit = exact
	}
	for i := uint64(1); i <= limit; i++ {
		sum += 1 / math.Pow(float64(i), s)
	}
	if n > exact {
		// Integral tail: ∫ x^-s dx from `exact` to n.
		sum += (math.Pow(float64(n), 1-s) - math.Pow(float64(exact), 1-s)) / (1 - s)
	}
	return sum
}

// Next returns the next sampled rank in [0, n). Rank 0 is the hottest key.
func (z *Zipf) Next() uint64 {
	u := z.rng.Float64()
	uz := u * z.zetan
	if uz < 1.0 {
		return 0
	}
	if uz < 1.0+z.half {
		return 1
	}
	rank := uint64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
	if rank >= z.n {
		rank = z.n - 1
	}
	return rank
}

// Trace materializes m samples, the way the paper's workload generator
// stores its access trace in a heap array before the timed run.
func (z *Zipf) Trace(m int) []uint64 {
	out := make([]uint64, m)
	for i := range out {
		out[i] = z.Next()
	}
	return out
}
