// Package hashmap implements the paper's STL-map microbenchmark (§4.3,
// §4.4): a hash table in far memory accessed through a Zipfian key trace.
// Keys and values are small (the paper uses 4-byte pairs), so spatial
// locality is poor and access granularity is tiny — the workload that
// rewards small object sizes (Fig. 9) and exposes Fastswap's page-granular
// I/O amplification (Fig. 13).
//
// The table is open-addressing with linear probing, 16-byte slots
// (key, value). As in the paper, the access trace itself is also stored in
// a heap array and read sequentially during the run.
package hashmap

import (
	"fmt"

	"trackfm/internal/workloads"
	"trackfm/internal/workloads/dist"
)

// Config sizes the benchmark.
type Config struct {
	// Entries is the number of key/value pairs inserted.
	Entries int
	// Lookups is the number of Zipfian get operations.
	Lookups int
	// Skew is the Zipf skew parameter (paper: 1.02).
	Skew float64
	// Seed drives trace generation.
	Seed uint64
}

// WorkingSetBytes reports the table plus trace footprint for cfg.
func (c Config) WorkingSetBytes() uint64 {
	return uint64(tableSlots(c.Entries))*16 + uint64(c.Lookups)*8
}

// tableSlots sizes the table at 2x entries rounded up to a power of two.
func tableSlots(entries int) uint64 {
	n := uint64(2)
	for n < uint64(entries)*2 {
		n <<= 1
	}
	return n
}

// hashKey mixes a key into a slot index (splitmix64 finalizer).
func hashKey(k uint64) uint64 {
	k ^= k >> 30
	k *= 0xBF58476D1CE4E5B9
	k ^= k >> 27
	k *= 0x94D049BB133111EB
	k ^= k >> 31
	return k
}

// Table is a far-memory hash table over an Accessor.
type Table struct {
	acc   workloads.Accessor
	base  uint64
	slots uint64
}

// Build allocates and populates a table with entries pairs: key i+1 maps
// to value 2*(i+1)+1 (key 0 marks an empty slot).
func Build(acc workloads.Accessor, entries int) (*Table, error) {
	if entries <= 0 {
		return nil, fmt.Errorf("hashmap: entries must be positive")
	}
	slots := tableSlots(entries)
	t := &Table{acc: acc, base: acc.Malloc(slots * 16), slots: slots}
	for i := 0; i < entries; i++ {
		key := uint64(i) + 1
		t.put(key, 2*key+1)
	}
	return t, nil
}

func (t *Table) slotAddr(s uint64) uint64 { return t.base + s*16 }

func (t *Table) put(key, val uint64) {
	s := hashKey(key) & (t.slots - 1)
	for {
		addr := t.slotAddr(s)
		k := t.acc.LoadU64(addr)
		if k == 0 || k == key {
			t.acc.StoreU64(addr, key)
			t.acc.StoreU64(addr+8, val)
			return
		}
		s = (s + 1) & (t.slots - 1)
	}
}

// Get looks key up, returning (value, found).
func (t *Table) Get(key uint64) (uint64, bool) {
	s := hashKey(key) & (t.slots - 1)
	for {
		addr := t.slotAddr(s)
		k := t.acc.LoadU64(addr)
		if k == key {
			return t.acc.LoadU64(addr + 8), true
		}
		if k == 0 {
			return 0, false
		}
		s = (s + 1) & (t.slots - 1)
	}
}

// Result reports a benchmark run.
type Result struct {
	// Hits counts successful lookups (all lookups should hit).
	Hits int
	// CheckSum accumulates returned values, for cross-backend checks.
	CheckSum uint64
}

// Run builds the table and trace, resets the accessor cold, then executes
// the Zipfian lookups. The caller reads cycles/counters from the
// accessor's Env (resetting its counters beforehand if it wants the
// lookup phase isolated — Run resets them after the build phase).
func Run(acc workloads.Accessor, cfg Config) (*Result, error) {
	if cfg.Lookups <= 0 {
		return nil, fmt.Errorf("hashmap: lookups must be positive")
	}
	if cfg.Skew <= 0 {
		cfg.Skew = 1.02
	}
	t, err := Build(acc, cfg.Entries)
	if err != nil {
		return nil, err
	}

	// Store the access trace in a heap array (paper: a 190MB key array
	// "also allocated on the heap").
	z, err := dist.NewZipf(uint64(cfg.Entries), cfg.Skew, cfg.Seed)
	if err != nil {
		return nil, err
	}
	traceBase := acc.Malloc(uint64(cfg.Lookups) * 8)
	for i := 0; i < cfg.Lookups; i++ {
		acc.StoreU64(traceBase+uint64(i)*8, z.Next()+1)
	}

	// Isolate the measurement phase. As in the paper, the table build is
	// untimed but its residual locality carries over: whatever fit in
	// local memory during construction is still local when the lookups
	// start (at 100% local memory nothing ever leaves).
	acc.Env().Clock.Reset()
	acc.Env().Counters.Reset()

	res := &Result{}
	reader := acc.SeqReader(traceBase, 8)
	defer reader.Close()
	var buf [8]byte
	for i := 0; i < cfg.Lookups; i++ {
		reader.Next(uint64(i), buf[:])
		key := le64(buf[:])
		v, ok := t.Get(key)
		if ok {
			res.Hits++
			res.CheckSum += v
		}
	}
	return res, nil
}

func le64(b []byte) uint64 {
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}
