package hashmap

import (
	"testing"

	"trackfm/internal/core"
	"trackfm/internal/fastswap"
	"trackfm/internal/sim"
	"trackfm/internal/workloads"
)

func tfmAccessor(t *testing.T, objSize int, heap, budget uint64) *workloads.TrackFMAccessor {
	t.Helper()
	rt, err := core.NewRuntime(core.Config{
		Env: sim.NewEnv(), ObjectSize: objSize, HeapSize: heap, LocalBudget: budget,
	})
	if err != nil {
		t.Fatalf("NewRuntime: %v", err)
	}
	return &workloads.TrackFMAccessor{RT: rt}
}

func fsAccessor(t *testing.T, heap, budget uint64) *workloads.FastswapAccessor {
	t.Helper()
	sw, err := fastswap.New(fastswap.Config{Env: sim.NewEnv(), HeapSize: heap, LocalBudget: budget})
	if err != nil {
		t.Fatalf("fastswap.New: %v", err)
	}
	return &workloads.FastswapAccessor{Swap: sw}
}

func TestTablePutGet(t *testing.T) {
	acc := workloads.NewLocalAccessor(sim.NewEnv())
	tbl, err := Build(acc, 100)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	for key := uint64(1); key <= 100; key++ {
		v, ok := tbl.Get(key)
		if !ok {
			t.Fatalf("key %d missing", key)
		}
		if v != 2*key+1 {
			t.Fatalf("key %d = %d, want %d", key, v, 2*key+1)
		}
	}
	if _, ok := tbl.Get(9999); ok {
		t.Fatalf("absent key found")
	}
}

func TestBuildValidation(t *testing.T) {
	acc := workloads.NewLocalAccessor(sim.NewEnv())
	if _, err := Build(acc, 0); err == nil {
		t.Fatalf("zero entries accepted")
	}
	if _, err := Run(acc, Config{Entries: 10, Lookups: 0}); err == nil {
		t.Fatalf("zero lookups accepted")
	}
}

func TestRunChecksumsAgreeAcrossBackends(t *testing.T) {
	cfg := Config{Entries: 500, Lookups: 3000, Skew: 1.02, Seed: 7}

	local, err := Run(workloads.NewLocalAccessor(sim.NewEnv()), cfg)
	if err != nil {
		t.Fatalf("local run: %v", err)
	}
	if local.Hits != cfg.Lookups {
		t.Fatalf("local hits = %d, want %d", local.Hits, cfg.Lookups)
	}

	tfm, err := Run(tfmAccessor(t, 64, 1<<22, 1<<14), cfg)
	if err != nil {
		t.Fatalf("trackfm run: %v", err)
	}
	if tfm.CheckSum != local.CheckSum || tfm.Hits != local.Hits {
		t.Fatalf("trackfm result %+v != local %+v", tfm, local)
	}

	fs, err := Run(fsAccessor(t, 1<<22, 1<<15), cfg)
	if err != nil {
		t.Fatalf("fastswap run: %v", err)
	}
	if fs.CheckSum != local.CheckSum {
		t.Fatalf("fastswap checksum %d != local %d", fs.CheckSum, local.CheckSum)
	}
}

func TestSmallObjectsReduceDataTransferred(t *testing.T) {
	// Fig. 9/13 shape: under memory pressure with a zipfian point-access
	// pattern, a 64B object size must move far less data than 4KB pages.
	cfg := Config{Entries: 4000, Lookups: 8000, Skew: 1.02, Seed: 3}
	heap := uint64(1 << 24)
	budget := cfg.WorkingSetBytes() / 4 // 25% local

	accSmall := tfmAccessor(t, 64, heap, budget)
	if _, err := Run(accSmall, cfg); err != nil {
		t.Fatalf("trackfm 64B run: %v", err)
	}
	smallBytes := accSmall.Env().Counters.BytesFetched

	accFS := fsAccessor(t, heap, budget)
	if _, err := Run(accFS, cfg); err != nil {
		t.Fatalf("fastswap run: %v", err)
	}
	fsBytes := accFS.Env().Counters.BytesFetched

	if smallBytes == 0 || fsBytes == 0 {
		t.Fatalf("no data transferred; memory pressure too low (small=%d fs=%d)", smallBytes, fsBytes)
	}
	if fsBytes < smallBytes*4 {
		t.Fatalf("I/O amplification not visible: fastswap %d vs trackfm-64B %d bytes", fsBytes, smallBytes)
	}
}

func TestSmallObjectsFasterForZipfianAccess(t *testing.T) {
	// Fig. 9b: at 25% local memory, smaller objects win for this workload.
	cfg := Config{Entries: 4000, Lookups: 8000, Skew: 1.02, Seed: 3}
	heap := uint64(1 << 24)
	budget := cfg.WorkingSetBytes() / 4

	run := func(objSize int) uint64 {
		acc := tfmAccessor(t, objSize, heap, budget)
		if _, err := Run(acc, cfg); err != nil {
			t.Fatalf("run(%d): %v", objSize, err)
		}
		return acc.Env().Clock.Cycles()
	}
	small := run(64)
	large := run(4096)
	if small >= large {
		t.Fatalf("64B objects (%d cycles) not faster than 4KB (%d) for zipfian hashmap", small, large)
	}
}

func TestWorkingSetBytes(t *testing.T) {
	cfg := Config{Entries: 100, Lookups: 1000}
	// 256 slots (2*100 rounded to pow2) * 16B + 1000 * 8B trace.
	if got := cfg.WorkingSetBytes(); got != 256*16+8000 {
		t.Fatalf("WorkingSetBytes = %d", got)
	}
}

func TestHashKeySpreads(t *testing.T) {
	seen := make(map[uint64]bool)
	for k := uint64(1); k <= 1000; k++ {
		seen[hashKey(k)&1023] = true
	}
	if len(seen) < 600 {
		t.Fatalf("hash spreads over only %d/1024 buckets", len(seen))
	}
}
