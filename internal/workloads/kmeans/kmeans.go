// Package kmeans builds the k-means clustering benchmark as a mini-IR
// program: the paper's vehicle for showing that indiscriminate loop
// chunking backfires (Fig. 8). Its structure is the point: a hot outer
// loop over points containing *nested short loops* over dimensions and
// centroids — low object density per loop entry, so the tfm_init cost of
// chunking is paid constantly and never amortizes.
//
// Values are integers; points lie on an integer grid, so the arithmetic
// (squared Euclidean distances, mean updates with integer division) is
// exact and the final assignment is deterministic across backends.
package kmeans

import "trackfm/internal/ir"

// Config sizes the benchmark.
type Config struct {
	Points     int64 // number of points (paper: 30M; scale down)
	Dims       int64 // dimensions per point (small: the low-density loops)
	K          int64 // centroids
	Iterations int64 // Lloyd iterations
}

// WorkingSetBytes reports the far-heap footprint.
func (c Config) WorkingSetBytes() uint64 {
	points := uint64(c.Points * c.Dims * 8)
	centroids := uint64(c.K * c.Dims * 8)
	sums := uint64(c.K * (c.Dims + 1) * 8)
	assign := uint64(c.Points * 8)
	return points + centroids + sums + assign
}

// Program builds the IR. Layout (all heap):
//
//	pts     [Points][Dims]i64   row-major
//	cent    [K][Dims]i64
//	sums    [K][Dims]i64        per-iteration accumulation
//	counts  [K]i64
//	assign  [Points]i64         final cluster per point (checksummed)
//
// Points are generated as pts[p][d] = (p*31 + d*17) % 1024. Initial
// centroids copy the first K points. The program returns
// sum(assign[p] * (p+1)) as an order-sensitive checksum.
func Program(c Config) *ir.Program {
	p := ir.NewProgram()
	pts, cent, sums, counts, assign := ir.V("pts"), ir.V("cent"), ir.V("sums"), ir.V("counts"), ir.V("assign")

	ptAddr := func(pt, d ir.Expr) ir.Expr {
		return ir.Add(pts, ir.Mul(ir.Add(ir.Mul(pt, ir.C(c.Dims)), d), ir.C(8)))
	}
	centAddr := func(k, d ir.Expr) ir.Expr {
		return ir.Add(cent, ir.Mul(ir.Add(ir.Mul(k, ir.C(c.Dims)), d), ir.C(8)))
	}
	sumAddr := func(k, d ir.Expr) ir.Expr {
		return ir.Add(sums, ir.Mul(ir.Add(ir.Mul(k, ir.C(c.Dims)), d), ir.C(8)))
	}

	body := []ir.Stmt{
		&ir.Malloc{Dst: "pts", Size: ir.C(c.Points * c.Dims * 8)},
		&ir.Malloc{Dst: "cent", Size: ir.C(c.K * c.Dims * 8)},
		&ir.Malloc{Dst: "sums", Size: ir.C(c.K * c.Dims * 8)},
		&ir.Malloc{Dst: "counts", Size: ir.C(c.K * 8)},
		&ir.Malloc{Dst: "assign", Size: ir.C(c.Points * 8)},

		// Generate points.
		ir.Loop("p", ir.C(0), ir.C(c.Points),
			ir.Loop("d", ir.C(0), ir.C(c.Dims),
				ir.St(ptAddr(ir.V("p"), ir.V("d")),
					ir.B(ir.OpMod,
						ir.Add(ir.Mul(ir.V("p"), ir.C(31)), ir.Mul(ir.V("d"), ir.C(17))),
						ir.C(1024))),
			),
		),
		// Initial centroids = first K points.
		ir.Loop("k", ir.C(0), ir.C(c.K),
			ir.Loop("d", ir.C(0), ir.C(c.Dims),
				ir.St(centAddr(ir.V("k"), ir.V("d")), ir.Ld(ptAddr(ir.V("k"), ir.V("d")))),
			),
		),

		// Lloyd iterations.
		ir.Loop("it", ir.C(0), ir.C(c.Iterations),
			// Zero accumulators.
			ir.Loop("k", ir.C(0), ir.C(c.K),
				ir.St(ir.Idx(counts, ir.V("k"), 8), ir.C(0)),
				ir.Loop("d", ir.C(0), ir.C(c.Dims),
					ir.St(sumAddr(ir.V("k"), ir.V("d")), ir.C(0)),
				),
			),
			// Assignment step: nearest centroid by squared distance.
			ir.Loop("p", ir.C(0), ir.C(c.Points),
				ir.Let("best", ir.C(0)),
				ir.Let("bestDist", ir.C(1<<62)),
				ir.Loop("k", ir.C(0), ir.C(c.K),
					ir.Let("dist", ir.C(0)),
					ir.Loop("d", ir.C(0), ir.C(c.Dims),
						ir.Let("diff", ir.Sub(
							ir.Ld(ptAddr(ir.V("p"), ir.V("d"))),
							ir.Ld(centAddr(ir.V("k"), ir.V("d"))))),
						ir.Let("dist", ir.Add(ir.V("dist"), ir.Mul(ir.V("diff"), ir.V("diff")))),
					),
					&ir.If{Cond: ir.B(ir.OpLt, ir.V("dist"), ir.V("bestDist")), Then: []ir.Stmt{
						ir.Let("bestDist", ir.V("dist")),
						ir.Let("best", ir.V("k")),
					}},
				),
				ir.St(ir.Idx(assign, ir.V("p"), 8), ir.V("best")),
				ir.St(ir.Idx(counts, ir.V("best"), 8),
					ir.Add(ir.Ld(ir.Idx(counts, ir.V("best"), 8)), ir.C(1))),
				ir.Loop("d", ir.C(0), ir.C(c.Dims),
					ir.St(sumAddr(ir.V("best"), ir.V("d")),
						ir.Add(ir.Ld(sumAddr(ir.V("best"), ir.V("d"))),
							ir.Ld(ptAddr(ir.V("p"), ir.V("d"))))),
				),
			),
			// Update step: centroid = mean of assigned points.
			ir.Loop("k", ir.C(0), ir.C(c.K),
				ir.Let("cnt", ir.Ld(ir.Idx(counts, ir.V("k"), 8))),
				&ir.If{Cond: ir.B(ir.OpGt, ir.V("cnt"), ir.C(0)), Then: []ir.Stmt{
					ir.Loop("d", ir.C(0), ir.C(c.Dims),
						ir.St(centAddr(ir.V("k"), ir.V("d")),
							ir.B(ir.OpDiv, ir.Ld(sumAddr(ir.V("k"), ir.V("d"))), ir.V("cnt"))),
					),
				}},
			),
		),

		// Checksum of assignments.
		ir.Let("chk", ir.C(0)),
		ir.Loop("p", ir.C(0), ir.C(c.Points),
			ir.Let("chk", ir.Add(ir.V("chk"),
				ir.Mul(ir.Ld(ir.Idx(assign, ir.V("p"), 8)), ir.Add(ir.V("p"), ir.C(1))))),
		),
		&ir.Return{E: ir.V("chk")},
	}
	p.AddFunc(ir.Fn("main", nil, body...))
	return p
}
