package kmeans

import (
	"testing"

	"trackfm/internal/compiler"
	"trackfm/internal/core"
	"trackfm/internal/interp"
	"trackfm/internal/ir"
	"trackfm/internal/sim"
)

var small = Config{Points: 400, Dims: 4, K: 5, Iterations: 3}

func compileAndRunTFM(t *testing.T, cfg Config, opts compiler.Options, budget uint64) (int64, *sim.Env, *compiler.Stats) {
	t.Helper()
	prog := Program(cfg)
	stats, err := compiler.Compile(prog, opts)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	env := sim.NewEnv()
	rt, err := core.NewRuntime(core.Config{
		Env: env, ObjectSize: opts.ObjectSize, HeapSize: 1 << 24, LocalBudget: budget,
	})
	if err != nil {
		t.Fatalf("NewRuntime: %v", err)
	}
	res, err := interp.Run(prog, interp.NewTrackFMBackend(rt), interp.Options{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res.Return, env, stats
}

func profileOf(t *testing.T, cfg Config) *compiler.Profile {
	t.Helper()
	prog := Program(cfg)
	prof := compiler.NewProfile()
	if _, err := interp.Run(prog, interp.NewLocalBackend(sim.NewEnv()), interp.Options{Profile: prof}); err != nil {
		t.Fatalf("profiling run: %v", err)
	}
	// Profiles key loops by node pointer, so the profile only helps a
	// program built identically; rebuild in the caller and match by
	// structure via a fresh profile-aware compile below.
	return prof
}

func TestResultStableAcrossChunkModes(t *testing.T) {
	want, _, _ := compileAndRunTFM(t, small, compiler.Options{Chunking: compiler.ChunkNone, ObjectSize: 4096}, 1<<22)
	gotAll, _, _ := compileAndRunTFM(t, small, compiler.Options{Chunking: compiler.ChunkAll, ObjectSize: 4096}, 1<<22)
	if gotAll != want {
		t.Fatalf("ChunkAll checksum %d != naive %d", gotAll, want)
	}
	gotCM, _, _ := compileAndRunTFM(t, small, compiler.Options{Chunking: compiler.ChunkCostModel, ObjectSize: 4096}, 1<<22)
	if gotCM != want {
		t.Fatalf("ChunkCostModel checksum %d != naive %d", gotCM, want)
	}
}

func TestResultMatchesLocalReference(t *testing.T) {
	prog := Program(small)
	res, err := interp.Run(prog, interp.NewLocalBackend(sim.NewEnv()), interp.Options{})
	if err != nil {
		t.Fatalf("local run: %v", err)
	}
	want, _, _ := compileAndRunTFM(t, small, compiler.Options{Chunking: compiler.ChunkNone, ObjectSize: 4096}, 1<<16)
	if res.Return != want {
		t.Fatalf("far-memory result %d != local reference %d", want, res.Return)
	}
}

func TestClustersAreNonTrivial(t *testing.T) {
	// The checksum must not be zero (all points in cluster 0 would make
	// the benchmark vacuous).
	got, _, _ := compileAndRunTFM(t, small, compiler.Options{Chunking: compiler.ChunkNone, ObjectSize: 4096}, 1<<22)
	if got == 0 {
		t.Fatalf("degenerate clustering: checksum 0")
	}
}

func TestIndiscriminateChunkingHurts(t *testing.T) {
	// Fig. 8: applying loop chunking to every loop slows k-means down;
	// the cost-model filter must beat it.
	cfg := Config{Points: 600, Dims: 4, K: 6, Iterations: 2}
	_, envNone, _ := compileAndRunTFM(t, cfg, compiler.Options{Chunking: compiler.ChunkNone, ObjectSize: 4096}, 1<<20)
	_, envAll, sAll := compileAndRunTFM(t, cfg, compiler.Options{Chunking: compiler.ChunkAll, ObjectSize: 4096}, 1<<20)

	if sAll.StreamsChunked == 0 {
		t.Fatalf("ChunkAll chunked nothing; test is vacuous")
	}
	slowdown := float64(envAll.Clock.Cycles()) / float64(envNone.Clock.Cycles())
	if slowdown < 1.5 {
		t.Fatalf("indiscriminate chunking slowdown %.2fx, want >= 1.5x (paper: ~4x)", slowdown)
	}
}

func TestCostModelFiltersLowDensityLoops(t *testing.T) {
	cfg := Config{Points: 600, Dims: 4, K: 6, Iterations: 2}

	// Build a profile on the same (structurally identical) program and
	// compile with it.
	prog := Program(cfg)
	prof := compiler.NewProfile()
	if _, err := interp.Run(prog, interp.NewLocalBackend(sim.NewEnv()), interp.Options{Profile: prof}); err != nil {
		t.Fatalf("profiling run: %v", err)
	}
	stats, err := compiler.Compile(prog, compiler.Options{
		Chunking: compiler.ChunkCostModel, ObjectSize: 4096, Profile: prof,
	})
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	// The Dims=4 inner loops must be rejected; k-means has no stream
	// that survives the model at this shape except possibly the long
	// point-major generation scans.
	if stats.StreamsRejected == 0 {
		t.Fatalf("cost model rejected nothing: %+v", stats)
	}

	env := sim.NewEnv()
	rt, err := core.NewRuntime(core.Config{Env: env, ObjectSize: 4096, HeapSize: 1 << 24, LocalBudget: 1 << 20})
	if err != nil {
		t.Fatalf("NewRuntime: %v", err)
	}
	if _, err := interp.Run(prog, interp.NewTrackFMBackend(rt), interp.Options{}); err != nil {
		t.Fatalf("Run: %v", err)
	}
	selective := env.Clock.Cycles()

	_, envAll, _ := compileAndRunTFM(t, cfg, compiler.Options{Chunking: compiler.ChunkAll, ObjectSize: 4096}, 1<<20)
	if selective >= envAll.Clock.Cycles() {
		t.Fatalf("cost-model chunking (%d cycles) not faster than all-loops (%d)", selective, envAll.Clock.Cycles())
	}
}

func TestWorkingSetBytes(t *testing.T) {
	ws := small.WorkingSetBytes()
	if ws == 0 || ws < uint64(small.Points*small.Dims*8) {
		t.Fatalf("WorkingSetBytes = %d", ws)
	}
}

func TestProfileHelper(t *testing.T) {
	prof := profileOf(t, small)
	if len(prof.Entries) == 0 {
		t.Fatalf("profile recorded no loops")
	}
	var anyShort bool
	for l := range prof.Entries {
		if tr, ok := prof.AvgTrips(l); ok && tr <= uint64(small.Dims) {
			anyShort = true
		}
	}
	if !anyShort {
		t.Fatalf("no short inner loops observed in profile")
	}
	_ = ir.CountNodes(Program(small).Funcs["main"].Body) // program builds deterministically
}
