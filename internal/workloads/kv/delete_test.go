package kv

import (
	"testing"

	"trackfm/internal/sim"
	"trackfm/internal/workloads"
)

func TestDeleteBasics(t *testing.T) {
	acc := workloads.NewLocalAccessor(sim.NewEnv())
	st, _ := NewStore(acc, 100)
	st.Set(1, 16, 25)
	st.Set(2, 16, 25)
	if !st.Delete(1) {
		t.Fatalf("Delete of present key returned false")
	}
	if st.Delete(1) {
		t.Fatalf("double Delete returned true")
	}
	if st.Items() != 1 {
		t.Fatalf("Items = %d after delete", st.Items())
	}
	buf := make([]byte, 64)
	if _, ok := st.Get(1, buf); ok {
		t.Fatalf("deleted key still readable")
	}
	if _, ok := st.Get(2, buf); !ok {
		t.Fatalf("unrelated key lost")
	}
}

func TestDeleteRecyclesSlabItems(t *testing.T) {
	acc := workloads.NewLocalAccessor(sim.NewEnv())
	st, _ := NewStore(acc, 100)
	st.Set(1, 16, 10) // class 64
	itemAddr := func(key uint64) uint64 {
		h := hashKey(key)
		slot := h & (st.idxSlots - 1)
		for {
			addr := st.idxBase + slot*16
			if st.acc.LoadU64(addr) == h {
				return st.acc.LoadU64(addr + 8)
			}
			slot = (slot + 1) & (st.idxSlots - 1)
		}
	}
	old := itemAddr(1)
	st.Delete(1)
	st.Set(99, 16, 10) // same class: must reuse the freed item
	if got := itemAddr(99); got != old {
		t.Fatalf("slab item not recycled: %d vs %d", got, old)
	}
}

func TestDeleteTombstoneProbing(t *testing.T) {
	// Force a probe chain, delete the middle element, and verify keys
	// beyond the tombstone remain reachable and reinsertions reuse it.
	acc := workloads.NewLocalAccessor(sim.NewEnv())
	st, _ := NewStore(acc, 4) // 8 slots: collisions guaranteed
	for key := uint64(1); key <= 6; key++ {
		if err := st.Set(key, 16, 2); err != nil {
			t.Fatalf("Set(%d): %v", key, err)
		}
	}
	st.Delete(3)
	buf := make([]byte, 16)
	for key := uint64(1); key <= 6; key++ {
		_, ok := st.Get(key, buf)
		if key == 3 && ok {
			t.Fatalf("deleted key 3 found")
		}
		if key != 3 && !ok {
			t.Fatalf("key %d unreachable after tombstone", key)
		}
	}
	// Reinsert: must succeed and be readable.
	if err := st.Set(3, 16, 2); err != nil {
		t.Fatalf("reinsert: %v", err)
	}
	if _, ok := st.Get(3, buf); !ok {
		t.Fatalf("reinserted key missing")
	}
	if st.Items() != 6 {
		t.Fatalf("Items = %d, want 6", st.Items())
	}
}

func TestDeleteChurnAgainstModel(t *testing.T) {
	// Random set/get/delete churn, cross-checked against a Go map.
	acc := workloads.NewLocalAccessor(sim.NewEnv())
	st, _ := NewStore(acc, 256)
	model := map[uint64]int{}
	rng := sim.NewRNG(31)
	buf := make([]byte, 1024)
	for step := 0; step < 5000; step++ {
		key := uint64(rng.Intn(200)) + 1
		switch rng.Intn(3) {
		case 0:
			vl := 2 + rng.Intn(200)
			if err := st.Set(key, 16, vl); err != nil {
				t.Fatalf("Set: %v", err)
			}
			model[key] = vl
		case 1:
			got := st.Delete(key)
			_, want := model[key]
			if got != want {
				t.Fatalf("step %d: Delete(%d) = %v, want %v", step, key, got, want)
			}
			delete(model, key)
		default:
			n, ok := st.Get(key, buf)
			vl, want := model[key]
			if ok != want || (ok && n != vl) {
				t.Fatalf("step %d: Get(%d) = (%d,%v), want (%d,%v)", step, key, n, ok, vl, want)
			}
		}
	}
	if st.Items() != len(model) {
		t.Fatalf("Items = %d, model has %d", st.Items(), len(model))
	}
}
