// Package kv implements the memcached-style in-memory key-value store of
// §4.5: a hash index over slab-allocated items with USR-distribution
// key/value sizes, driven by Zipfian get operations. Access granularity is
// small and spatial locality poor, so the workload is dominated by I/O
// amplification effects (Fig. 16).
//
// The slab allocator batches small items into size-class slabs, mirroring
// memcached 1.2.7 — including the paper's observation (§5 Lessons) that
// slab batching *limits* TrackFM's ability to mitigate I/O amplification
// compared to naive small allocations.
package kv

import (
	"fmt"

	"trackfm/internal/workloads"
	"trackfm/internal/workloads/dist"
)

// slabClasses are the item size classes (bytes, including the 32-byte
// item header: key hash, value length, key length, padding).
var slabClasses = []int{64, 128, 256, 512, 1024, 2048}

// slabChunkItems is how many items each slab chunk batches.
const slabChunkItems = 64

// Store is the KV store over an Accessor.
type Store struct {
	acc workloads.Accessor

	// Hash index: open addressing, 16B slots (keyHash, itemAddr).
	idxBase  uint64
	idxSlots uint64

	// Slab allocator state per class: current chunk base, next free
	// item index within it, and the free list of released items —
	// memcached never returns slab memory, it recycles items within
	// their size class.
	slabBase []uint64
	slabNext []int
	slabFree [][]uint64

	items int
}

// itemHeaderSize is the per-item metadata the store writes ahead of the
// value bytes.
const itemHeaderSize = 32

// NewStore sizes the index for capacity items.
func NewStore(acc workloads.Accessor, capacity int) (*Store, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("kv: capacity must be positive")
	}
	slots := uint64(2)
	for slots < uint64(capacity)*2 {
		slots <<= 1
	}
	return &Store{
		acc:      acc,
		idxBase:  acc.Malloc(slots * 16),
		idxSlots: slots,
		slabBase: make([]uint64, len(slabClasses)),
		slabNext: make([]int, len(slabClasses)),
		slabFree: make([][]uint64, len(slabClasses)),
	}, nil
}

func classFor(n int) (int, error) {
	for ci, sz := range slabClasses {
		if n <= sz {
			return ci, nil
		}
	}
	return 0, fmt.Errorf("kv: item of %d bytes exceeds largest slab class", n)
}

// allocItem slab-allocates an item of the class covering n bytes,
// recycling freed items of the same class first.
func (s *Store) allocItem(n int) (uint64, error) {
	ci, err := classFor(n)
	if err != nil {
		return 0, err
	}
	if free := s.slabFree[ci]; len(free) > 0 {
		addr := free[len(free)-1]
		s.slabFree[ci] = free[:len(free)-1]
		return addr, nil
	}
	if s.slabBase[ci] == 0 || s.slabNext[ci] == slabChunkItems {
		s.slabBase[ci] = s.acc.Malloc(uint64(slabClasses[ci]) * slabChunkItems)
		s.slabNext[ci] = 0
	}
	addr := s.slabBase[ci] + uint64(s.slabNext[ci])*uint64(slabClasses[ci])
	s.slabNext[ci]++
	return addr, nil
}

// freeItem returns an item to its class's free list.
func (s *Store) freeItem(addr uint64, n int) {
	ci, err := classFor(n)
	if err != nil {
		return
	}
	s.slabFree[ci] = append(s.slabFree[ci], addr)
}

// tombstone marks index slots whose item was deleted; probes continue
// past them, inserts may reuse them.
const tombstone = ^uint64(0)

func hashKey(k uint64) uint64 {
	k ^= k >> 33
	k *= 0xFF51AFD7ED558CCD
	k ^= k >> 33
	k *= 0xC4CEB9FE1A85EC53
	k ^= k >> 33
	if k == 0 || k == tombstone { // reserved markers
		k = 1
	}
	return k
}

// Set inserts or overwrites key with a value of valLen synthetic bytes
// (keyLen models the key bytes stored in the item header region).
func (s *Store) Set(key uint64, keyLen, valLen int) error {
	h := hashKey(key)
	slot := h & (s.idxSlots - 1)
	reuse := uint64(0)
	haveReuse := false
	for {
		addr := s.idxBase + slot*16
		k := s.acc.LoadU64(addr)
		if k == tombstone {
			if !haveReuse {
				reuse, haveReuse = addr, true
			}
			slot = (slot + 1) & (s.idxSlots - 1)
			continue
		}
		if k == 0 && haveReuse {
			addr = reuse // key absent: recycle the first tombstone
		}
		if k == 0 || k == h {
			item, err := s.allocItem(itemHeaderSize + keyLen + valLen)
			if err != nil {
				return err
			}
			// Item header: hash, lengths.
			s.acc.StoreU64(item, h)
			s.acc.StoreU64(item+8, uint64(valLen)<<16|uint64(keyLen))
			// Value payload: deterministic bytes derived from the key.
			payload := make([]byte, valLen)
			for i := range payload {
				payload[i] = byte(key + uint64(i))
			}
			s.acc.Store(item+itemHeaderSize+uint64(keyLen), payload)
			s.acc.StoreU64(addr, h)
			s.acc.StoreU64(addr+8, item)
			if k == 0 {
				s.items++
			}
			return nil
		}
		slot = (slot + 1) & (s.idxSlots - 1)
	}
}

// Get fetches key's value into dst (truncating to the stored length) and
// returns (valLen, found).
func (s *Store) Get(key uint64, dst []byte) (int, bool) {
	h := hashKey(key)
	slot := h & (s.idxSlots - 1)
	for {
		addr := s.idxBase + slot*16
		k := s.acc.LoadU64(addr)
		if k == 0 {
			return 0, false
		}
		if k == h {
			item := s.acc.LoadU64(addr + 8)
			lens := s.acc.LoadU64(item + 8)
			keyLen := int(lens & 0xFFFF)
			valLen := int(lens >> 16)
			n := valLen
			if n > len(dst) {
				n = len(dst)
			}
			s.acc.Load(item+itemHeaderSize+uint64(keyLen), dst[:n])
			return valLen, true
		}
		slot = (slot + 1) & (s.idxSlots - 1)
	}
}

// Delete removes key, recycling its item into the slab free list, and
// reports whether the key existed.
func (s *Store) Delete(key uint64) bool {
	h := hashKey(key)
	slot := h & (s.idxSlots - 1)
	for {
		addr := s.idxBase + slot*16
		k := s.acc.LoadU64(addr)
		if k == 0 {
			return false
		}
		if k == h {
			item := s.acc.LoadU64(addr + 8)
			lens := s.acc.LoadU64(item + 8)
			keyLen := int(lens & 0xFFFF)
			valLen := int(lens >> 16)
			s.freeItem(item, itemHeaderSize+keyLen+valLen)
			s.acc.StoreU64(addr, tombstone)
			s.items--
			return true
		}
		slot = (slot + 1) & (s.idxSlots - 1)
	}
}

// Items reports how many distinct keys are stored.
func (s *Store) Items() int { return s.items }

// Config sizes the memcached benchmark.
type Config struct {
	// Keys is the key population (paper: 100M; scale down).
	Keys int
	// Gets is the number of get operations.
	Gets int
	// Skew is the Zipf skew (paper sweeps 1.0-1.3).
	Skew float64
	// Seed drives the generators.
	Seed uint64
}

// Result reports a run.
type Result struct {
	Hits     int
	Misses   int
	CheckSum uint64
}

// Run populates the store with USR-sized items and executes the Zipfian
// get workload, resetting the accessor's clock and counters after the
// populate phase so measurements cover only gets.
func Run(acc workloads.Accessor, cfg Config) (*Result, error) {
	if cfg.Keys <= 0 || cfg.Gets <= 0 {
		return nil, fmt.Errorf("kv: Keys and Gets must be positive")
	}
	if cfg.Skew <= 0 {
		cfg.Skew = 1.02
	}
	st, err := NewStore(acc, cfg.Keys)
	if err != nil {
		return nil, err
	}
	usr := dist.NewUSR(cfg.Seed)
	for i := 0; i < cfg.Keys; i++ {
		if err := st.Set(uint64(i)+1, usr.KeySize(), usr.ValueSize()); err != nil {
			return nil, err
		}
	}
	z, err := dist.NewZipf(uint64(cfg.Keys), cfg.Skew, cfg.Seed+1)
	if err != nil {
		return nil, err
	}

	// The populate phase is untimed; its residual locality carries over,
	// as in the paper's methodology.
	acc.Env().Clock.Reset()
	acc.Env().Counters.Reset()

	res := &Result{}
	buf := make([]byte, 1024)
	for i := 0; i < cfg.Gets; i++ {
		key := z.Next() + 1
		n, ok := st.Get(key, buf)
		if !ok {
			res.Misses++
			continue
		}
		res.Hits++
		if n > 0 {
			res.CheckSum += uint64(buf[0]) + uint64(n)
		}
	}
	return res, nil
}

// EstimatedItemBytes reports the mean slab-class footprint per item for
// working-set sizing.
func EstimatedItemBytes(seed uint64, samples int) uint64 {
	usr := dist.NewUSR(seed)
	var total uint64
	for i := 0; i < samples; i++ {
		ci, _ := classFor(itemHeaderSize + usr.KeySize() + usr.ValueSize())
		total += uint64(slabClasses[ci])
	}
	return total / uint64(samples)
}
