package kv

import (
	"testing"

	"trackfm/internal/core"
	"trackfm/internal/fastswap"
	"trackfm/internal/sim"
	"trackfm/internal/workloads"
)

func tfmAccessor(t *testing.T, objSize int, heap, budget uint64) *workloads.TrackFMAccessor {
	t.Helper()
	rt, err := core.NewRuntime(core.Config{
		Env: sim.NewEnv(), ObjectSize: objSize, HeapSize: heap, LocalBudget: budget,
	})
	if err != nil {
		t.Fatalf("NewRuntime: %v", err)
	}
	return &workloads.TrackFMAccessor{RT: rt}
}

func fsAccessor(t *testing.T, heap, budget uint64) *workloads.FastswapAccessor {
	t.Helper()
	sw, err := fastswap.New(fastswap.Config{Env: sim.NewEnv(), HeapSize: heap, LocalBudget: budget})
	if err != nil {
		t.Fatalf("fastswap.New: %v", err)
	}
	return &workloads.FastswapAccessor{Swap: sw}
}

func TestStoreSetGet(t *testing.T) {
	acc := workloads.NewLocalAccessor(sim.NewEnv())
	st, err := NewStore(acc, 100)
	if err != nil {
		t.Fatalf("NewStore: %v", err)
	}
	if err := st.Set(42, 16, 25); err != nil {
		t.Fatalf("Set: %v", err)
	}
	buf := make([]byte, 64)
	n, ok := st.Get(42, buf)
	if !ok || n != 25 {
		t.Fatalf("Get = (%d, %v), want (25, true)", n, ok)
	}
	// Payload is deterministic: byte i = key + i.
	for i := 0; i < n; i++ {
		if buf[i] != byte(42+uint64(i)) {
			t.Fatalf("payload byte %d = %d", i, buf[i])
		}
	}
	if _, ok := st.Get(999, buf); ok {
		t.Fatalf("absent key found")
	}
	if st.Items() != 1 {
		t.Fatalf("Items = %d", st.Items())
	}
}

func TestStoreOverwrite(t *testing.T) {
	acc := workloads.NewLocalAccessor(sim.NewEnv())
	st, _ := NewStore(acc, 10)
	st.Set(1, 16, 2)
	st.Set(1, 16, 100)
	buf := make([]byte, 128)
	n, ok := st.Get(1, buf)
	if !ok || n != 100 {
		t.Fatalf("after overwrite Get = (%d, %v)", n, ok)
	}
	if st.Items() != 1 {
		t.Fatalf("overwrite double-counted: Items = %d", st.Items())
	}
}

func TestStoreOversizedItemRejected(t *testing.T) {
	acc := workloads.NewLocalAccessor(sim.NewEnv())
	st, _ := NewStore(acc, 10)
	if err := st.Set(1, 16, 4000); err == nil {
		t.Fatalf("item above largest slab class accepted")
	}
}

func TestSlabBatching(t *testing.T) {
	// Two same-class items must land in the same slab chunk,
	// consecutively spaced by the class size.
	acc := workloads.NewLocalAccessor(sim.NewEnv())
	st, _ := NewStore(acc, 10)
	a, err := st.allocItem(40) // class 64
	if err != nil {
		t.Fatalf("allocItem: %v", err)
	}
	b, _ := st.allocItem(50) // class 64 again
	if b != a+64 {
		t.Fatalf("slab items not batched: %d then %d", a, b)
	}
	c, _ := st.allocItem(600) // class 1024
	if c == a+128 {
		t.Fatalf("different class allocated from same chunk")
	}
}

func TestRunAgreesAcrossBackends(t *testing.T) {
	cfg := Config{Keys: 400, Gets: 2000, Skew: 1.05, Seed: 9}
	local, err := Run(workloads.NewLocalAccessor(sim.NewEnv()), cfg)
	if err != nil {
		t.Fatalf("local: %v", err)
	}
	if local.Misses != 0 {
		t.Fatalf("local misses = %d", local.Misses)
	}
	tfm, err := Run(tfmAccessor(t, 64, 1<<22, 1<<15), cfg)
	if err != nil {
		t.Fatalf("trackfm: %v", err)
	}
	if tfm.CheckSum != local.CheckSum {
		t.Fatalf("trackfm checksum %d != local %d", tfm.CheckSum, local.CheckSum)
	}
	fs, err := Run(fsAccessor(t, 1<<22, 1<<16), cfg)
	if err != nil {
		t.Fatalf("fastswap: %v", err)
	}
	if fs.CheckSum != local.CheckSum {
		t.Fatalf("fastswap checksum %d != local %d", fs.CheckSum, local.CheckSum)
	}
}

func TestTrackFMTransfersLessThanFastswap(t *testing.T) {
	// Fig. 16c shape: page-granular Fastswap moves far more data than
	// object-granular TrackFM for small KV items under pressure.
	cfg := Config{Keys: 3000, Gets: 6000, Skew: 1.01, Seed: 5}
	itemBytes := EstimatedItemBytes(5, 4096)
	ws := uint64(cfg.Keys) * (itemBytes + 16)
	heap := uint64(1 << 26)
	budget := ws / 12 // heavy pressure

	tfm := tfmAccessor(t, 64, heap, budget)
	if _, err := Run(tfm, cfg); err != nil {
		t.Fatalf("trackfm: %v", err)
	}
	fs := fsAccessor(t, heap, budget)
	if _, err := Run(fs, cfg); err != nil {
		t.Fatalf("fastswap: %v", err)
	}
	tb := tfm.Env().Counters.BytesFetched
	fb := fs.Env().Counters.BytesFetched
	if tb == 0 || fb == 0 {
		t.Fatalf("no pressure: trackfm=%d fastswap=%d", tb, fb)
	}
	if fb < tb*3 {
		t.Fatalf("amplification gap too small: fastswap=%d trackfm=%d", fb, tb)
	}
}

func TestHigherSkewHelpsFastswap(t *testing.T) {
	// Fig. 16a shape: as skew rises, temporal locality amortizes page
	// faults and Fastswap closes the gap (throughput rises).
	run := func(skew float64) uint64 {
		cfg := Config{Keys: 3000, Gets: 6000, Skew: skew, Seed: 5}
		fs := fsAccessor(t, 1<<26, 1<<18)
		if _, err := Run(fs, cfg); err != nil {
			t.Fatalf("fastswap: %v", err)
		}
		return fs.Env().Clock.Cycles()
	}
	low := run(1.01)
	high := run(1.30)
	if high >= low {
		t.Fatalf("higher skew did not speed Fastswap up: 1.01 -> %d cycles, 1.30 -> %d", low, high)
	}
}

func TestEstimatedItemBytes(t *testing.T) {
	got := EstimatedItemBytes(1, 10_000)
	// Most items are 32B header + small value -> class 64; mean should
	// sit between 64 and 256.
	if got < 64 || got > 256 {
		t.Fatalf("EstimatedItemBytes = %d", got)
	}
}

func TestRunValidation(t *testing.T) {
	acc := workloads.NewLocalAccessor(sim.NewEnv())
	if _, err := Run(acc, Config{Keys: 0, Gets: 10}); err == nil {
		t.Fatalf("zero keys accepted")
	}
	if _, err := NewStore(acc, 0); err == nil {
		t.Fatalf("zero capacity accepted")
	}
}
