package nas

import "trackfm/internal/ir"

// cgProgram builds the conjugate-gradient kernel: repeated sparse
// matrix-vector products over a banded matrix stored in CSR-like arrays
// (vals, cols with a fixed 5 nonzeros per row), plus dot products. The
// column gather x[cols[...]] is the irregular access CG is known for; the
// vals/cols scans are long sequential streams the chunking pass picks up.
func cgProgram(s Scale) *ir.Program {
	n := s.N
	const nnz = 5 // diagonals at offsets -64, -1, 0, +1, +64

	p := ir.NewProgram()
	at := func(base string, i ir.Expr) ir.Expr { return ir.Idx(ir.V(base), i, 8) }

	body := []ir.Stmt{
		&ir.Malloc{Dst: "vals", Size: ir.C(n * nnz * 8)},
		&ir.Malloc{Dst: "cols", Size: ir.C(n * nnz * 8)},
		&ir.Malloc{Dst: "x", Size: ir.C(n * 8)},
		&ir.Malloc{Dst: "y", Size: ir.C(n * 8)},

		// Build the banded matrix and the initial vector.
		ir.Loop("r", ir.C(0), ir.C(n),
			ir.St(at("x", ir.V("r")), ir.Add(ir.B(ir.OpMod, ir.V("r"), ir.C(97)), ir.C(1))),
			ir.Loop("d", ir.C(0), ir.C(nnz),
				// offsets: d=0 -> -64, 1 -> -1, 2 -> 0, 3 -> +1, 4 -> +64
				ir.Let("off", ir.Sub(
					ir.Add(
						ir.Mul(ir.B(ir.OpEq, ir.V("d"), ir.C(4)), ir.C(64)),
						ir.B(ir.OpEq, ir.V("d"), ir.C(3))),
					ir.Add(
						ir.Mul(ir.B(ir.OpEq, ir.V("d"), ir.C(0)), ir.C(64)),
						ir.B(ir.OpEq, ir.V("d"), ir.C(1))))),
				ir.Let("c", ir.Add(ir.V("r"), ir.V("off"))),
				&ir.If{Cond: ir.B(ir.OpLt, ir.V("c"), ir.C(0)), Then: []ir.Stmt{
					ir.Let("c", ir.C(0)),
				}},
				&ir.If{Cond: ir.B(ir.OpGe, ir.V("c"), ir.C(n)), Then: []ir.Stmt{
					ir.Let("c", ir.C(n-1)),
				}},
				ir.St(at("cols", ir.Add(ir.Mul(ir.V("r"), ir.C(nnz)), ir.V("d"))), ir.V("c")),
				ir.St(at("vals", ir.Add(ir.Mul(ir.V("r"), ir.C(nnz)), ir.V("d"))),
					ir.Add(ir.B(ir.OpMod, ir.Add(ir.V("r"), ir.V("d")), ir.C(7)), ir.C(1))),
			),
		),

		// CG-style iterations: y = A*x; rho = x.y; x = (y + x) bounded.
		ir.Let("rho", ir.C(0)),
		ir.Loop("it", ir.C(0), ir.C(s.Iterations),
			// y = A*x with the column gather.
			ir.Loop("r", ir.C(0), ir.C(n),
				ir.Let("acc", ir.C(0)),
				ir.Loop("d", ir.C(0), ir.C(nnz),
					ir.Let("k", ir.Add(ir.Mul(ir.V("r"), ir.C(nnz)), ir.V("d"))),
					ir.Let("acc", ir.Add(ir.V("acc"),
						ir.Mul(ir.Ld(at("vals", ir.V("k"))),
							ir.Ld(at("x", ir.Ld(at("cols", ir.V("k")))))))),
				),
				ir.St(at("y", ir.V("r")), mask(ir.V("acc"))),
			),
			// rho = x . y
			ir.Let("rho", ir.C(0)),
			ir.Loop("r", ir.C(0), ir.C(n),
				ir.Let("rho", mask(ir.Add(ir.V("rho"),
					ir.Mul(ir.Ld(at("x", ir.V("r"))), ir.Ld(at("y", ir.V("r"))))))),
			),
			// x = normalized combination.
			ir.Loop("r", ir.C(0), ir.C(n),
				ir.St(at("x", ir.V("r")),
					mask(ir.Add(ir.Ld(at("y", ir.V("r"))),
						ir.B(ir.OpShr, ir.Ld(at("x", ir.V("r"))), ir.C(1))))),
			),
		),
		&ir.Return{E: ir.V("rho")},
	}
	p.AddFunc(ir.Fn("main", nil, body...))
	return p
}
