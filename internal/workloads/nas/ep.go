package nas

import "trackfm/internal/ir"

// epProgram builds the EP kernel (embarrassingly parallel): generate
// pseudo-random coordinate pairs, accept those inside the unit disc, and
// tally acceptance counts per annulus. EP is compute-bound with a tiny
// working set (the tally array) plus a batch buffer of generated numbers;
// it is the NAS control case where far memory should cost almost nothing.
// Integer fixed-point (10 fractional bits) replaces the original's
// floating point.
func epProgram(s Scale) *ir.Program {
	n := s.N // pairs per batch
	const one = 1 << 10
	const annuli = 10

	p := ir.NewProgram()
	at := func(base string, i ir.Expr) ir.Expr { return ir.Idx(ir.V(base), i, 8) }

	body := []ir.Stmt{
		&ir.Malloc{Dst: "xs", Size: ir.C(n * 8)},
		&ir.Malloc{Dst: "q", Size: ir.C(annuli * 8)},
		ir.Loop("a", ir.C(0), ir.C(annuli),
			ir.St(at("q", ir.V("a")), ir.C(0)),
		),

		ir.Let("seed", ir.C(271828183)),
		ir.Loop("it", ir.C(0), ir.C(s.Iterations),
			// Generate a batch (sequential writes: the only stream).
			ir.Loop("i", ir.C(0), ir.C(n),
				ir.Let("seed", ir.B(ir.OpAnd,
					ir.Add(ir.Mul(ir.V("seed"), ir.C(1103515245)), ir.C(12345)),
					ir.C(0x7FFFFFFF))),
				ir.St(at("xs", ir.V("i")), ir.B(ir.OpMod, ir.V("seed"), ir.C(2*one))),
			),
			// Tally pairs.
			ir.LoopStep("i", ir.C(0), ir.C(n-1), 2,
				ir.Let("x", ir.Sub(ir.Ld(at("xs", ir.V("i"))), ir.C(one))),
				ir.Let("y", ir.Sub(ir.Ld(at("xs", ir.Add(ir.V("i"), ir.C(1)))), ir.C(one))),
				ir.Let("t", ir.Add(ir.Mul(ir.V("x"), ir.V("x")), ir.Mul(ir.V("y"), ir.V("y")))),
				&ir.If{Cond: ir.B(ir.OpLe, ir.V("t"), ir.C(one*one)), Then: []ir.Stmt{
					// Annulus index: t scaled into [0, annuli).
					ir.Let("l", ir.B(ir.OpDiv, ir.Mul(ir.V("t"), ir.C(annuli)), ir.C(one*one+1))),
					ir.St(at("q", ir.V("l")),
						ir.Add(ir.Ld(at("q", ir.V("l"))), ir.C(1))),
				}},
			),
		),

		// Checksum: weighted tally sum.
		ir.Let("chk", ir.C(0)),
		ir.Loop("a", ir.C(0), ir.C(annuli),
			ir.Let("chk", ir.Add(ir.V("chk"),
				ir.Mul(ir.Ld(at("q", ir.V("a"))), ir.Add(ir.V("a"), ir.C(1))))),
		),
		&ir.Return{E: ir.V("chk")},
	}
	p.AddFunc(ir.Fn("main", nil, body...))
	return p
}
