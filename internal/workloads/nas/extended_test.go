package nas

import (
	"testing"

	"trackfm/internal/compiler"
	"trackfm/internal/core"
	"trackfm/internal/fastswap"
	"trackfm/internal/interp"
	"trackfm/internal/sim"
)

func extTestScale(b Benchmark) Scale {
	switch b {
	case EP:
		return Scale{N: 4096, Iterations: 2}
	case LU:
		return Scale{N: 8, Iterations: 1}
	default:
		return Scale{}
	}
}

func TestExtendedKernelsAgreeAcrossBackends(t *testing.T) {
	for _, b := range Extended {
		b := b
		t.Run(b.String(), func(t *testing.T) {
			s := extTestScale(b)
			want := localResult(t, b, s)
			if want == 0 {
				t.Fatalf("%v produced a degenerate zero checksum", b)
			}

			prog, _ := Program(b, s)
			if _, err := compiler.Compile(prog, compiler.Options{
				Chunking: compiler.ChunkCostModel, ObjectSize: 4096, Prefetch: true,
			}); err != nil {
				t.Fatalf("Compile: %v", err)
			}
			env := sim.NewEnv()
			rt, err := core.NewRuntime(core.Config{
				Env: env, ObjectSize: 4096, HeapSize: 1 << 24, LocalBudget: 1 << 18,
			})
			if err != nil {
				t.Fatalf("NewRuntime: %v", err)
			}
			res, err := interp.Run(prog, interp.NewTrackFMBackend(rt), interp.Options{})
			if err != nil {
				t.Fatalf("trackfm run: %v", err)
			}
			if res.Return != want {
				t.Fatalf("trackfm = %d, want %d", res.Return, want)
			}

			prog2, _ := Program(b, s)
			if _, err := compiler.Compile(prog2, compiler.Options{Chunking: compiler.ChunkNone}); err != nil {
				t.Fatalf("Compile: %v", err)
			}
			sw, err := fastswap.New(fastswap.Config{Env: sim.NewEnv(), HeapSize: 1 << 24, LocalBudget: 1 << 19})
			if err != nil {
				t.Fatalf("fastswap.New: %v", err)
			}
			res, err = interp.Run(prog2, interp.NewFastswapBackend(sw), interp.Options{})
			if err != nil {
				t.Fatalf("fastswap run: %v", err)
			}
			if res.Return != want {
				t.Fatalf("fastswap = %d, want %d", res.Return, want)
			}
		})
	}
}

func TestEPHasTinyFarMemoryFootprint(t *testing.T) {
	// EP is the control case: compute-bound, tiny tallies; even at 25%
	// local memory its slowdown should be modest compared to, say, LU.
	slowdown := func(b Benchmark, s Scale) float64 {
		local := float64(localResult2(t, b, s))
		prog, _ := Program(b, s)
		if _, err := compiler.Compile(prog, compiler.Options{
			Chunking: compiler.ChunkCostModel, ObjectSize: 4096, Prefetch: true,
		}); err != nil {
			t.Fatalf("Compile: %v", err)
		}
		ws := WorkingSetBytes(b, s)
		env := sim.NewEnv()
		bud := ws / 4
		if bud < 8*4096 {
			bud = 8 * 4096
		}
		rt, err := core.NewRuntime(core.Config{
			Env: env, ObjectSize: 4096, HeapSize: ws * 2, LocalBudget: bud,
		})
		if err != nil {
			t.Fatalf("NewRuntime: %v", err)
		}
		if _, err := interp.Run(prog, interp.NewTrackFMBackend(rt), interp.Options{}); err != nil {
			t.Fatalf("run: %v", err)
		}
		return float64(env.Clock.Cycles()) / local
	}
	// At budget-floor scales both kernels degenerate to the guard floor,
	// so compare at sizes where 25% local actually constrains them.
	ep := slowdown(EP, Scale{N: 32768, Iterations: 1})
	lu := slowdown(LU, Scale{N: 24, Iterations: 1})
	if ep >= lu {
		t.Fatalf("EP slowdown (%v) should be below LU's (%v)", ep, lu)
	}
}

// localResult2 measures cycles of the local-only run (not the checksum).
func localResult2(t *testing.T, b Benchmark, s Scale) uint64 {
	t.Helper()
	prog, err := Program(b, s)
	if err != nil {
		t.Fatalf("Program: %v", err)
	}
	env := sim.NewEnv()
	if _, err := interp.Run(prog, interp.NewLocalBackend(env), interp.Options{}); err != nil {
		t.Fatalf("local run: %v", err)
	}
	return env.Clock.Cycles()
}

func TestExtendedInfo(t *testing.T) {
	for _, b := range Extended {
		if TableInfo(b).Name == "" {
			t.Errorf("TableInfo(%v) empty", b)
		}
		if WorkingSetBytes(b, Scale{}) == 0 {
			t.Errorf("WorkingSetBytes(%v) = 0", b)
		}
	}
	if EP.String() != "EP" || LU.String() != "LU" {
		t.Errorf("extended names broken")
	}
}
