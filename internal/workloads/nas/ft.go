package nas

import "trackfm/internal/ir"

// ftProgram builds the FT kernel: a radix-2 butterfly network over a
// complex array of N points (re/im interleaved), iterated per Scale.
// The Walsh-Hadamard transform stands in for the FFT: identical butterfly
// indexing (i1 = ((t>>s)<<(s+1)) + (t & (2^s - 1)), i2 = i1 + 2^s),
// identical deeply nested tight loop structure, integer arithmetic.
//
// Two properties reproduce the paper's FT findings (§4.5):
//
//   - The butterfly addresses involve variable shift amounts (the stage
//     counter), which defeats the induction-variable analysis — exactly
//     the "deeply nested, tight loop structure [that] confounds our loop
//     analysis, resulting in the high guard count".
//   - The body is emitted naive-frontend style, loading each operand
//     twice; the O1 pre-optimization removes the redundant loads
//     (Fig. 17b's TFM/O1 configuration).
func ftProgram(s Scale) *ir.Program {
	n := s.N // complex points; must be a power of two
	stages := int64(0)
	for v := int64(1); v < n; v <<= 1 {
		stages++
	}

	p := ir.NewProgram()
	re := func(i ir.Expr) ir.Expr { return ir.Idx(ir.V("a"), ir.Mul(i, ir.C(2)), 8) }
	im := func(i ir.Expr) ir.Expr {
		return ir.Idx(ir.V("a"), ir.Add(ir.Mul(i, ir.C(2)), ir.C(1)), 8)
	}

	body := []ir.Stmt{
		&ir.Malloc{Dst: "a", Size: ir.C(n * 2 * 8)},
		// Initialize with a bounded pseudo-random signal.
		ir.Loop("i", ir.C(0), ir.C(n),
			ir.St(re(ir.V("i")), ir.B(ir.OpMod, ir.Mul(ir.V("i"), ir.C(31)), ir.C(257))),
			ir.St(im(ir.V("i")), ir.B(ir.OpMod, ir.Mul(ir.V("i"), ir.C(17)), ir.C(263))),
		),

		ir.Loop("it", ir.C(0), ir.C(s.Iterations),
			ir.Loop("s", ir.C(0), ir.C(stages),
				ir.Let("len", ir.B(ir.OpShl, ir.C(1), ir.V("s"))),
				ir.Loop("t", ir.C(0), ir.C(n/2),
					ir.Let("i1", ir.Add(
						ir.B(ir.OpShl, ir.B(ir.OpShr, ir.V("t"), ir.V("s")),
							ir.Add(ir.V("s"), ir.C(1))),
						ir.B(ir.OpAnd, ir.V("t"), ir.Sub(ir.V("len"), ir.C(1))))),
					ir.Let("i2", ir.Add(ir.V("i1"), ir.V("len"))),
					// Naive-frontend butterfly: every operand loaded
					// twice (once into a temp, once in the combine).
					ir.Let("ur", ir.Ld(re(ir.V("i1")))),
					ir.Let("ui", ir.Ld(im(ir.V("i1")))),
					ir.Let("vr", ir.Ld(re(ir.V("i2")))),
					ir.Let("vi", ir.Ld(im(ir.V("i2")))),
					ir.Let("tr1", mask(ir.Add(ir.Ld(re(ir.V("i1"))), ir.Ld(re(ir.V("i2")))))),
					ir.Let("ti1", mask(ir.Add(ir.Ld(im(ir.V("i1"))), ir.Ld(im(ir.V("i2")))))),
					ir.Let("tr2", mask(ir.Sub(ir.V("ur"), ir.V("vr")))),
					ir.Let("ti2", mask(ir.Sub(ir.V("ui"), ir.V("vi")))),
					ir.St(re(ir.V("i1")), ir.V("tr1")),
					ir.St(im(ir.V("i1")), ir.V("ti1")),
					ir.St(re(ir.V("i2")), ir.V("tr2")),
					ir.St(im(ir.V("i2")), ir.V("ti2")),
				),
			),
		),

		// Checksum.
		ir.Let("chk", ir.C(0)),
		ir.Loop("i", ir.C(0), ir.C(n),
			ir.Let("chk", mask(ir.Add(ir.V("chk"),
				ir.Add(ir.Ld(re(ir.V("i"))), ir.Ld(im(ir.V("i"))))))),
		),
		&ir.Return{E: ir.V("chk")},
	}
	p.AddFunc(ir.Fn("main", nil, body...))
	return p
}
