package nas

import "trackfm/internal/ir"

// isBuckets is the key range / bucket count for the IS kernel. NAS IS
// uses 2^10+ buckets at class-D scale; at simulation scale the bucket
// count must stay representable within the scaled local-memory budgets
// (each bucket's output tail is an active write region), so the default
// is proportionally smaller.
const isBuckets = 16

// isProgram builds the IS kernel: integer bucket (counting) sort.
// Sequential key scans feed a scatter into the histogram (irregular),
// a small prefix-sum pass, then a ranked scatter into the output —
// the NAS IS structure with its mix of streaming and random access.
func isProgram(s Scale) *ir.Program {
	n := s.N
	p := ir.NewProgram()
	at := func(base string, i ir.Expr) ir.Expr { return ir.Idx(ir.V(base), i, 8) }

	body := []ir.Stmt{
		&ir.Malloc{Dst: "keys", Size: ir.C(n * 8)},
		&ir.Malloc{Dst: "out", Size: ir.C(n * 8)},
		&ir.Malloc{Dst: "hist", Size: ir.C(isBuckets * 8)},

		// Key generation (LCG-style, bounded to the bucket range).
		ir.Loop("i", ir.C(0), ir.C(n),
			ir.St(at("keys", ir.V("i")),
				ir.B(ir.OpMod,
					ir.B(ir.OpShr,
						mask(ir.Add(ir.Mul(ir.V("i"), ir.C(1103515245)), ir.C(12345))),
						ir.C(5)),
					ir.C(isBuckets))),
		),

		ir.Loop("it", ir.C(0), ir.C(s.Iterations),
			// Zero histogram.
			ir.Loop("b", ir.C(0), ir.C(isBuckets),
				ir.St(at("hist", ir.V("b")), ir.C(0)),
			),
			// Count: sequential key scan, scattered increments.
			ir.Loop("i", ir.C(0), ir.C(n),
				ir.Let("k", ir.Ld(at("keys", ir.V("i")))),
				ir.St(at("hist", ir.V("k")),
					ir.Add(ir.Ld(at("hist", ir.V("k"))), ir.C(1))),
			),
			// Exclusive prefix sum over the histogram.
			ir.Let("acc", ir.C(0)),
			ir.Loop("b", ir.C(0), ir.C(isBuckets),
				ir.Let("cnt", ir.Ld(at("hist", ir.V("b")))),
				ir.St(at("hist", ir.V("b")), ir.V("acc")),
				ir.Let("acc", ir.Add(ir.V("acc"), ir.V("cnt"))),
			),
			// Rank scatter: out[hist[k]++] = k.
			ir.Loop("i", ir.C(0), ir.C(n),
				ir.Let("k", ir.Ld(at("keys", ir.V("i")))),
				ir.Let("pos", ir.Ld(at("hist", ir.V("k")))),
				ir.St(at("out", ir.V("pos")), ir.V("k")),
				ir.St(at("hist", ir.V("k")), ir.Add(ir.V("pos"), ir.C(1))),
			),
		),

		// Verification: out must be non-decreasing; checksum mixes
		// sortedness with an order-weighted sum.
		ir.Let("sorted", ir.C(1)),
		ir.Let("chk", ir.C(0)),
		ir.Loop("i", ir.C(1), ir.C(n),
			&ir.If{Cond: ir.B(ir.OpLt, ir.Ld(at("out", ir.V("i"))),
				ir.Ld(at("out", ir.Sub(ir.V("i"), ir.C(1))))), Then: []ir.Stmt{
				ir.Let("sorted", ir.C(0)),
			}},
			ir.Let("chk", mask(ir.Add(ir.V("chk"),
				ir.Mul(ir.Ld(at("out", ir.V("i"))),
					ir.Add(ir.B(ir.OpMod, ir.V("i"), ir.C(63)), ir.C(1)))))),
		),
		&ir.Return{E: ir.Add(ir.Mul(ir.V("sorted"), ir.C(1<<40)), ir.V("chk"))},
	}
	p.AddFunc(ir.Fn("main", nil, body...))
	return p
}
