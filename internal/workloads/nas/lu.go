package nas

import "trackfm/internal/ir"

// luProgram builds the LU kernel: SSOR-style lower/upper triangular
// sweeps over an N^3 grid. The forward sweep propagates dependencies from
// (i-1, j-1, k-1) neighbors, the backward sweep from (i+1, j+1, k+1) —
// the wavefront data dependences that distinguish LU from the Jacobi-style
// MG sweeps. Integer arithmetic with shift-based relaxation.
func luProgram(s Scale) *ir.Program {
	n := s.N
	p := ir.NewProgram()
	iv := ir.V
	gidx := func(base string, i, j, k ir.Expr) ir.Expr {
		return ir.Idx(ir.V(base), ir.Add(ir.Mul(ir.Add(ir.Mul(i, ir.C(n)), j), ir.C(n)), k), 8)
	}

	body := []ir.Stmt{
		&ir.Malloc{Dst: "v", Size: ir.C(n * n * n * 8)},
		&ir.Malloc{Dst: "rsd", Size: ir.C(n * n * n * 8)},

		ir.Loop("t", ir.C(0), ir.C(n*n*n),
			ir.St(ir.Idx(ir.V("v"), ir.V("t"), 8), ir.B(ir.OpMod, ir.Mul(ir.V("t"), ir.C(19)), ir.C(2048))),
			ir.St(ir.Idx(ir.V("rsd"), ir.V("t"), 8), ir.B(ir.OpMod, ir.Mul(ir.V("t"), ir.C(11)), ir.C(1024))),
		),

		ir.Loop("it", ir.C(0), ir.C(s.Iterations),
			// Lower-triangular (forward) sweep.
			ir.Loop("i", ir.C(1), ir.C(n),
				ir.Loop("j", ir.C(1), ir.C(n),
					ir.Loop("k", ir.C(1), ir.C(n),
						ir.St(gidx("v", iv("i"), iv("j"), iv("k")),
							mask(ir.Add(
								ir.Ld(gidx("v", iv("i"), iv("j"), iv("k"))),
								ir.B(ir.OpShr, ir.Add(
									ir.Add(
										ir.Ld(gidx("v", ir.Sub(iv("i"), ir.C(1)), iv("j"), iv("k"))),
										ir.Ld(gidx("v", iv("i"), ir.Sub(iv("j"), ir.C(1)), iv("k")))),
									ir.Add(
										ir.Ld(gidx("v", iv("i"), iv("j"), ir.Sub(iv("k"), ir.C(1)))),
										ir.Ld(gidx("rsd", iv("i"), iv("j"), iv("k"))))),
									ir.C(2))))),
					),
				),
			),
			// Upper-triangular (backward) sweep, expressed over reversed
			// indices.
			ir.Loop("ii", ir.C(1), ir.C(n),
				ir.Let("i", ir.Sub(ir.C(n-1), ir.V("ii"))),
				ir.Loop("jj", ir.C(1), ir.C(n),
					ir.Let("j", ir.Sub(ir.C(n-1), ir.V("jj"))),
					ir.Loop("kk", ir.C(1), ir.C(n),
						ir.Let("k", ir.Sub(ir.C(n-1), ir.V("kk"))),
						ir.St(gidx("v", iv("i"), iv("j"), iv("k")),
							mask(ir.Add(
								ir.Ld(gidx("v", iv("i"), iv("j"), iv("k"))),
								ir.B(ir.OpShr, ir.Add(
									ir.Add(
										ir.Ld(gidx("v", ir.Add(iv("i"), ir.C(1)), iv("j"), iv("k"))),
										ir.Ld(gidx("v", iv("i"), ir.Add(iv("j"), ir.C(1)), iv("k")))),
									ir.Ld(gidx("v", iv("i"), iv("j"), ir.Add(iv("k"), ir.C(1))))),
									ir.C(2))))),
					),
				),
			),
		),

		ir.Let("chk", ir.C(0)),
		ir.Loop("t", ir.C(0), ir.C(n*n*n),
			ir.Let("chk", mask(ir.Add(ir.V("chk"), ir.Ld(ir.Idx(ir.V("v"), ir.V("t"), 8))))),
		),
		&ir.Return{E: ir.V("chk")},
	}
	p.AddFunc(ir.Fn("main", nil, body...))
	return p
}
