package nas

import "trackfm/internal/ir"

// mgProgram builds the MG kernel: a two-grid V-cycle of the multigrid
// method on an N^3 grid — Jacobi smoothing sweeps (6-point stencil, the
// innermost k loop walks contiguous memory), injection restriction to an
// (N/2)^3 coarse grid, coarse smoothing, and prolongation with
// correction. Integer arithmetic with shift-based averaging keeps values
// exact.
func mgProgram(s Scale) *ir.Program {
	n := s.N // fine grid dimension (even)
	h := n / 2

	p := ir.NewProgram()
	// Linear index helpers for the fine (n^3) and coarse (h^3) grids.
	fidx := func(base string, i, j, k ir.Expr) ir.Expr {
		return ir.Idx(ir.V(base), ir.Add(ir.Mul(ir.Add(ir.Mul(i, ir.C(n)), j), ir.C(n)), k), 8)
	}
	cidx := func(base string, i, j, k ir.Expr) ir.Expr {
		return ir.Idx(ir.V(base), ir.Add(ir.Mul(ir.Add(ir.Mul(i, ir.C(h)), j), ir.C(h)), k), 8)
	}
	iv := ir.V

	// smooth emits one Jacobi sweep dst <- stencil(src) over interior
	// points of an n-size grid (dim passed for fine/coarse reuse).
	smooth := func(dst, src string, dim int64, idx func(string, ir.Expr, ir.Expr, ir.Expr) ir.Expr) ir.Stmt {
		return ir.Loop("i", ir.C(1), ir.C(dim-1),
			ir.Loop("j", ir.C(1), ir.C(dim-1),
				ir.Loop("k", ir.C(1), ir.C(dim-1),
					ir.Let("sum", ir.Add(
						ir.Add(
							ir.Add(ir.Ld(idx(src, ir.Sub(iv("i"), ir.C(1)), iv("j"), iv("k"))),
								ir.Ld(idx(src, ir.Add(iv("i"), ir.C(1)), iv("j"), iv("k")))),
							ir.Add(ir.Ld(idx(src, iv("i"), ir.Sub(iv("j"), ir.C(1)), iv("k"))),
								ir.Ld(idx(src, iv("i"), ir.Add(iv("j"), ir.C(1)), iv("k"))))),
						ir.Add(
							ir.Add(ir.Ld(idx(src, iv("i"), iv("j"), ir.Sub(iv("k"), ir.C(1)))),
								ir.Ld(idx(src, iv("i"), iv("j"), ir.Add(iv("k"), ir.C(1))))),
							ir.Mul(ir.Ld(idx(src, iv("i"), iv("j"), iv("k"))), ir.C(2))))),
					ir.St(idx(dst, iv("i"), iv("j"), iv("k")),
						ir.B(ir.OpShr, ir.V("sum"), ir.C(3))),
				),
			),
		)
	}

	body := []ir.Stmt{
		&ir.Malloc{Dst: "u", Size: ir.C(n * n * n * 8)},
		&ir.Malloc{Dst: "v", Size: ir.C(n * n * n * 8)},
		&ir.Malloc{Dst: "c", Size: ir.C(h * h * h * 8)},
		&ir.Malloc{Dst: "d", Size: ir.C(h * h * h * 8)},

		// Initialize u with a bounded field; v starts as a copy.
		ir.Loop("x", ir.C(0), ir.C(n*n*n),
			ir.St(ir.Idx(ir.V("u"), ir.V("x"), 8), ir.B(ir.OpMod, ir.Mul(ir.V("x"), ir.C(23)), ir.C(4096))),
			ir.St(ir.Idx(ir.V("v"), ir.V("x"), 8), ir.C(0)),
		),
		ir.Loop("x", ir.C(0), ir.C(h*h*h),
			ir.St(ir.Idx(ir.V("c"), ir.V("x"), 8), ir.C(0)),
			ir.St(ir.Idx(ir.V("d"), ir.V("x"), 8), ir.C(0)),
		),

		ir.Loop("cycle", ir.C(0), ir.C(s.Iterations),
			// Pre-smoothing: v <- S(u), u <- S(v).
			smooth("v", "u", n, fidx),
			smooth("u", "v", n, fidx),
			// Restriction by injection: c[i,j,k] = u[2i,2j,2k].
			ir.Loop("i", ir.C(0), ir.C(h),
				ir.Loop("j", ir.C(0), ir.C(h),
					ir.Loop("k", ir.C(0), ir.C(h),
						ir.St(cidx("c", iv("i"), iv("j"), iv("k")),
							ir.Ld(fidx("u", ir.Mul(iv("i"), ir.C(2)),
								ir.Mul(iv("j"), ir.C(2)), ir.Mul(iv("k"), ir.C(2))))),
					),
				),
			),
			// Coarse smoothing: d <- S(c).
			smooth("d", "c", h, cidx),
			// Prolongation with correction: u[2i,2j,2k] += d[i,j,k]>>1.
			ir.Loop("i", ir.C(1), ir.C(h-1),
				ir.Loop("j", ir.C(1), ir.C(h-1),
					ir.Loop("k", ir.C(1), ir.C(h-1),
						ir.St(fidx("u", ir.Mul(iv("i"), ir.C(2)),
							ir.Mul(iv("j"), ir.C(2)), ir.Mul(iv("k"), ir.C(2))),
							mask(ir.Add(
								ir.Ld(fidx("u", ir.Mul(iv("i"), ir.C(2)),
									ir.Mul(iv("j"), ir.C(2)), ir.Mul(iv("k"), ir.C(2)))),
								ir.B(ir.OpShr, ir.Ld(cidx("d", iv("i"), iv("j"), iv("k"))), ir.C(1))))),
					),
				),
			),
		),

		// Checksum over the fine grid.
		ir.Let("chk", ir.C(0)),
		ir.Loop("x", ir.C(0), ir.C(n*n*n),
			ir.Let("chk", mask(ir.Add(ir.V("chk"), ir.Ld(ir.Idx(ir.V("u"), ir.V("x"), 8))))),
		),
		&ir.Return{E: ir.V("chk")},
	}
	p.AddFunc(ir.Fn("main", nil, body...))
	return p
}
