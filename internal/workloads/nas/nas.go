// Package nas implements the NAS benchmark subset of Table 3 / Fig. 17 as
// mini-IR programs: CG (conjugate gradient), FT (3D FFT), IS (integer
// bucket sort), MG (multigrid PDE solver), and SP (scalar penta-diagonal
// PDE solver).
//
// The kernels are integer-arithmetic structural reproductions: loop
// nests, array layouts, and access patterns match the originals, while
// floating-point arithmetic is replaced with bounded integer arithmetic
// so results are exact and verifiable across backends. FT substitutes the
// Walsh-Hadamard transform for the FFT — the WHT of size 2^k is the same
// tensor-product butterfly network as the FFT with all twiddles +/-1, so
// the memory access pattern (the thing the evaluation measures) is
// identical. FT and SP are deliberately emitted in the "naive frontend"
// style with redundant loads per statement; the O1 pre-optimization pass
// removes them, reproducing the §4.5 observation that unoptimized IR
// inflates TrackFM's guard count for these two codes.
package nas

import (
	"fmt"

	"trackfm/internal/ir"
)

// Benchmark names one NAS kernel.
type Benchmark int

// The five kernels the paper evaluates (Table 3), plus EP and LU, which
// the paper skipped "due to time constraints" and this reproduction adds
// as extensions.
const (
	CG Benchmark = iota
	FT
	IS
	MG
	SP
	EP
	LU
)

// All lists the paper's benchmarks in the paper's order.
var All = []Benchmark{CG, FT, IS, MG, SP}

// Extended lists the kernels beyond the paper's subset.
var Extended = []Benchmark{EP, LU}

// String implements fmt.Stringer.
func (b Benchmark) String() string {
	switch b {
	case CG:
		return "CG"
	case FT:
		return "FT"
	case IS:
		return "IS"
	case MG:
		return "MG"
	case SP:
		return "SP"
	case EP:
		return "EP"
	case LU:
		return "LU"
	default:
		return "unknown"
	}
}

// Info carries the Table 3 row for a benchmark.
type Info struct {
	Name        string
	Description string
	Class       string  // paper's problem class
	MemoryGB    float64 // paper's working set
	PaperLoC    int     // paper's line count for the C++ source
}

// TableInfo reproduces Table 3.
func TableInfo(b Benchmark) Info {
	switch b {
	case CG:
		return Info{"CG", "conjugate gradient", "D", 9, 586}
	case FT:
		return Info{"FT", "3D FFT", "C", 6, 756}
	case IS:
		return Info{"IS", "bucket sort for integers", "D", 34, 558}
	case MG:
		return Info{"MG", "PDE solver with multigrid method", "D", 27, 941}
	case SP:
		return Info{"SP", "PDE solver with scalar penta-diagonal method", "D", 12, 2013}
	case EP:
		return Info{"EP", "embarrassingly parallel random pairs (extension)", "D", 1, 359}
	case LU:
		return Info{"LU", "SSOR lower-upper PDE solver (extension)", "D", 12, 2800}
	default:
		return Info{}
	}
}

// Scale sizes a kernel run; the zero value selects per-kernel defaults
// tuned for simulation (working sets of a few MB with the paper's
// access-pattern structure intact).
type Scale struct {
	// N is the principal problem dimension (kernel-specific meaning).
	N int64
	// Iterations is the outer iteration count.
	Iterations int64
}

func (s Scale) withDefaults(n, iters int64) Scale {
	if s.N == 0 {
		s.N = n
	}
	if s.Iterations == 0 {
		s.Iterations = iters
	}
	return s
}

// Program builds the kernel as an uncompiled IR program.
func Program(b Benchmark, s Scale) (*ir.Program, error) {
	switch b {
	case CG:
		return cgProgram(s.withDefaults(16384, 3)), nil
	case FT:
		return ftProgram(s.withDefaults(32768, 1)), nil
	case IS:
		return isProgram(s.withDefaults(32768, 2)), nil
	case MG:
		return mgProgram(s.withDefaults(32, 2)), nil
	case SP:
		return spProgram(s.withDefaults(32, 2)), nil
	case EP:
		return epProgram(s.withDefaults(32768, 2)), nil
	case LU:
		return luProgram(s.withDefaults(32, 2)), nil
	default:
		return nil, fmt.Errorf("nas: unknown benchmark %d", b)
	}
}

// WorkingSetBytes estimates the far-heap footprint of Program(b, s).
func WorkingSetBytes(b Benchmark, s Scale) uint64 {
	switch b {
	case CG:
		s = s.withDefaults(16384, 3)
		return uint64(s.N)*5*16 + uint64(s.N)*3*8
	case FT:
		s = s.withDefaults(32768, 1)
		return uint64(s.N) * 2 * 8
	case IS:
		s = s.withDefaults(32768, 2)
		return uint64(s.N)*2*8 + isBuckets*8
	case MG:
		s = s.withDefaults(32, 2)
		n := uint64(s.N)
		fine := n * n * n * 8
		coarse := (n / 2) * (n / 2) * (n / 2) * 8
		return 2*fine + fine + coarse
	case SP:
		s = s.withDefaults(32, 2)
		n := uint64(s.N)
		return 2 * n * n * n * 8
	case EP:
		s = s.withDefaults(32768, 2)
		return uint64(s.N)*8 + 10*8
	case LU:
		s = s.withDefaults(32, 2)
		n := uint64(s.N)
		return 2 * n * n * n * 8
	default:
		return 0
	}
}

// mask bounds integer values so repeated arithmetic cannot overflow.
func mask(e ir.Expr) ir.Expr { return ir.B(ir.OpAnd, e, ir.C(0xFFFFF)) }
