package nas

import (
	"testing"

	"trackfm/internal/compiler"
	"trackfm/internal/core"
	"trackfm/internal/fastswap"
	"trackfm/internal/interp"
	"trackfm/internal/ir"
	"trackfm/internal/sim"
)

// testScale shrinks every kernel for unit tests.
func testScale(b Benchmark) Scale {
	switch b {
	case CG:
		return Scale{N: 512, Iterations: 2}
	case FT:
		return Scale{N: 512, Iterations: 1}
	case IS:
		return Scale{N: 2048, Iterations: 2}
	case MG:
		return Scale{N: 8, Iterations: 1}
	case SP:
		return Scale{N: 8, Iterations: 1}
	default:
		return Scale{}
	}
}

func localResult(t *testing.T, b Benchmark, s Scale) int64 {
	t.Helper()
	prog, err := Program(b, s)
	if err != nil {
		t.Fatalf("Program(%v): %v", b, err)
	}
	res, err := interp.Run(prog, interp.NewLocalBackend(sim.NewEnv()), interp.Options{})
	if err != nil {
		t.Fatalf("%v local run: %v", b, err)
	}
	return res.Return
}

func TestKernelsAgreeAcrossBackendsAndModes(t *testing.T) {
	for _, b := range All {
		b := b
		t.Run(b.String(), func(t *testing.T) {
			s := testScale(b)
			want := localResult(t, b, s)

			for _, o1 := range []bool{false, true} {
				for _, mode := range []compiler.ChunkMode{compiler.ChunkNone, compiler.ChunkCostModel} {
					prog, err := Program(b, s)
					if err != nil {
						t.Fatalf("Program: %v", err)
					}
					if _, err := compiler.Compile(prog, compiler.Options{
						Chunking: mode, ObjectSize: 4096, Prefetch: true, O1: o1,
					}); err != nil {
						t.Fatalf("Compile: %v", err)
					}
					env := sim.NewEnv()
					rt, err := core.NewRuntime(core.Config{
						Env: env, ObjectSize: 4096, HeapSize: 1 << 26, LocalBudget: 1 << 20,
					})
					if err != nil {
						t.Fatalf("NewRuntime: %v", err)
					}
					res, err := interp.Run(prog, interp.NewTrackFMBackend(rt), interp.Options{})
					if err != nil {
						t.Fatalf("%v o1=%v mode=%v run: %v", b, o1, mode, err)
					}
					if res.Return != want {
						t.Fatalf("%v o1=%v mode=%v = %d, want %d", b, o1, mode, res.Return, want)
					}
				}
			}

			// Fastswap agreement.
			prog, _ := Program(b, s)
			if _, err := compiler.Compile(prog, compiler.Options{Chunking: compiler.ChunkNone}); err != nil {
				t.Fatalf("Compile: %v", err)
			}
			sw, err := fastswap.New(fastswap.Config{Env: sim.NewEnv(), HeapSize: 1 << 26, LocalBudget: 1 << 21})
			if err != nil {
				t.Fatalf("fastswap.New: %v", err)
			}
			res, err := interp.Run(prog, interp.NewFastswapBackend(sw), interp.Options{})
			if err != nil {
				t.Fatalf("%v fastswap run: %v", b, err)
			}
			if res.Return != want {
				t.Fatalf("%v fastswap = %d, want %d", b, res.Return, want)
			}
		})
	}
}

func TestISActuallySorts(t *testing.T) {
	// The IS checksum encodes sortedness in bit 40.
	got := localResult(t, IS, testScale(IS))
	if got>>40 != 1 {
		t.Fatalf("IS output not sorted (checksum %#x)", got)
	}
}

func TestO1ReducesFTAndSPMemoryInstructions(t *testing.T) {
	// §4.5: O1 pre-optimization reduces memory instructions for FT and
	// SP (paper: 6x and 4x dynamic; our naive frontend carries 2x-3x
	// static redundancy, asserted here as > 1.3x).
	for _, b := range []Benchmark{FT, SP} {
		prog, _ := Program(b, testScale(b))
		stats, err := compiler.Compile(prog, compiler.Options{O1: true})
		if err != nil {
			t.Fatalf("Compile: %v", err)
		}
		ratio := float64(stats.MemAccessesBefore) / float64(stats.MemAccessesAfter)
		if ratio < 1.3 {
			t.Errorf("%v: O1 mem-instruction reduction %.2fx, want > 1.3x (%d -> %d)",
				b, ratio, stats.MemAccessesBefore, stats.MemAccessesAfter)
		}
	}
}

func TestO1ReducesFTGuardsDynamically(t *testing.T) {
	s := testScale(FT)
	run := func(o1 bool) uint64 {
		prog, _ := Program(FT, s)
		if _, err := compiler.Compile(prog, compiler.Options{O1: o1, Chunking: compiler.ChunkNone}); err != nil {
			t.Fatalf("Compile: %v", err)
		}
		env := sim.NewEnv()
		rt, err := core.NewRuntime(core.Config{Env: env, ObjectSize: 4096, HeapSize: 1 << 24, LocalBudget: 1 << 22})
		if err != nil {
			t.Fatalf("NewRuntime: %v", err)
		}
		if _, err := interp.Run(prog, interp.NewTrackFMBackend(rt), interp.Options{}); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return env.Counters.Guards()
	}
	naive := run(false)
	opt := run(true)
	if opt >= naive {
		t.Fatalf("O1 did not reduce dynamic guards: %d -> %d", naive, opt)
	}
	if float64(naive)/float64(opt) < 1.3 {
		t.Fatalf("O1 dynamic guard reduction only %.2fx", float64(naive)/float64(opt))
	}
}

func TestFTButterflyStreamsNotChunked(t *testing.T) {
	// The variable-shift butterfly indexing must defeat the IV analysis
	// (the paper's FT guard-count story).
	prog, _ := Program(FT, testScale(FT))
	stats, err := compiler.Compile(prog, compiler.Options{Chunking: compiler.ChunkAll, ObjectSize: 4096})
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	// Init and checksum loops chunk; butterfly loads must not. The
	// butterfly body has 8 loads + 4 stores; if any were chunked the
	// count would exceed the init/checksum streams (5).
	if stats.StreamsChunked > 6 {
		t.Fatalf("butterfly accesses were chunked: %d streams", stats.StreamsChunked)
	}
}

func TestTableInfoComplete(t *testing.T) {
	for _, b := range All {
		info := TableInfo(b)
		if info.Name == "" || info.MemoryGB == 0 || info.PaperLoC == 0 {
			t.Errorf("TableInfo(%v) incomplete: %+v", b, info)
		}
	}
	if TableInfo(Benchmark(99)).Name != "" {
		t.Errorf("unknown benchmark has info")
	}
}

func TestWorkingSetBytesPositive(t *testing.T) {
	for _, b := range All {
		if WorkingSetBytes(b, Scale{}) == 0 {
			t.Errorf("WorkingSetBytes(%v) = 0", b)
		}
	}
}

func TestProgramUnknownBenchmark(t *testing.T) {
	if _, err := Program(Benchmark(99), Scale{}); err == nil {
		t.Fatalf("unknown benchmark accepted")
	}
}

func TestDefaultScalesBuild(t *testing.T) {
	for _, b := range All {
		prog, err := Program(b, Scale{})
		if err != nil {
			t.Fatalf("Program(%v): %v", b, err)
		}
		if ir.CountMemAccesses(prog.Funcs["main"].Body) == 0 {
			t.Fatalf("%v has no memory accesses", b)
		}
	}
}
