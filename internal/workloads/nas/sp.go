package nas

import "trackfm/internal/ir"

// spProgram builds the SP kernel: scalar penta-diagonal line solves over
// an N^3 grid — for every (i, j) line, a forward elimination recurrence
// coupling x[k-1] and x[k-2], then a backward substitution coupling
// x[k+1] and x[k+2], as in the NAS SP x-solve/y-solve/z-solve phases.
// Like FT, the body is emitted naive-frontend style with redundant loads
// so the O1 pre-optimization has the same work to do the paper reports
// (a 4x memory-instruction reduction for SP).
func spProgram(s Scale) *ir.Program {
	n := s.N

	p := ir.NewProgram()
	iv := ir.V
	// Line-major layout: cell (i, j, k) at ((i*n)+j)*n + k.
	gidx := func(base string, i, j, k ir.Expr) ir.Expr {
		return ir.Idx(ir.V(base), ir.Add(ir.Mul(ir.Add(ir.Mul(i, ir.C(n)), j), ir.C(n)), k), 8)
	}

	body := []ir.Stmt{
		&ir.Malloc{Dst: "x", Size: ir.C(n * n * n * 8)},
		&ir.Malloc{Dst: "b", Size: ir.C(n * n * n * 8)},

		ir.Loop("t", ir.C(0), ir.C(n*n*n),
			ir.St(ir.Idx(ir.V("x"), ir.V("t"), 8), ir.B(ir.OpMod, ir.Mul(ir.V("t"), ir.C(13)), ir.C(512))),
			ir.St(ir.Idx(ir.V("b"), ir.V("t"), 8), ir.B(ir.OpMod, ir.Mul(ir.V("t"), ir.C(7)), ir.C(256))),
		),

		ir.Loop("it", ir.C(0), ir.C(s.Iterations),
			ir.Loop("i", ir.C(0), ir.C(n),
				ir.Loop("j", ir.C(0), ir.C(n),
					// Forward elimination along the line (k ascending):
					// naive codegen reloads x[k-1] and x[k-2] for each
					// use instead of keeping them in registers.
					ir.Loop("k", ir.C(2), ir.C(n),
						ir.Let("a1", ir.Ld(gidx("x", iv("i"), iv("j"), ir.Sub(iv("k"), ir.C(1))))),
						ir.Let("a2", ir.Ld(gidx("x", iv("i"), iv("j"), ir.Sub(iv("k"), ir.C(2))))),
						ir.Let("num", ir.Add(
							ir.Ld(gidx("b", iv("i"), iv("j"), iv("k"))),
							ir.Add(
								ir.Mul(ir.Ld(gidx("x", iv("i"), iv("j"), ir.Sub(iv("k"), ir.C(1)))), ir.C(3)),
								ir.Mul(ir.Ld(gidx("x", iv("i"), iv("j"), ir.Sub(iv("k"), ir.C(2)))), ir.C(2))))),
						ir.St(gidx("x", iv("i"), iv("j"), iv("k")),
							mask(ir.Add(ir.B(ir.OpShr, ir.V("num"), ir.C(2)),
								ir.B(ir.OpShr, ir.Add(ir.V("a1"), ir.V("a2")), ir.C(3))))),
					),
					// Backward substitution (k descending, expressed as
					// an ascending loop over the reversed index).
					ir.Loop("kk", ir.C(2), ir.C(n),
						ir.Let("k", ir.Sub(ir.C(n-1), ir.V("kk"))),
						ir.Let("c1", ir.Ld(gidx("x", iv("i"), iv("j"), ir.Add(iv("k"), ir.C(1))))),
						ir.Let("c2", ir.Ld(gidx("x", iv("i"), iv("j"), ir.Add(iv("k"), ir.C(2))))),
						ir.St(gidx("x", iv("i"), iv("j"), iv("k")),
							mask(ir.Add(
								ir.Ld(gidx("x", iv("i"), iv("j"), iv("k"))),
								ir.B(ir.OpShr, ir.Add(
									ir.Mul(ir.Ld(gidx("x", iv("i"), iv("j"), ir.Add(iv("k"), ir.C(1)))), ir.C(2)),
									ir.Ld(gidx("x", iv("i"), iv("j"), ir.Add(iv("k"), ir.C(2))))), ir.C(3))))),
						ir.Let("unused", ir.Add(ir.V("c1"), ir.V("c2"))),
					),
				),
			),
		),

		ir.Let("chk", ir.C(0)),
		ir.Loop("t", ir.C(0), ir.C(n*n*n),
			ir.Let("chk", mask(ir.Add(ir.V("chk"), ir.Ld(ir.Idx(ir.V("x"), ir.V("t"), 8))))),
		),
		&ir.Return{E: ir.V("chk")},
	}
	p.AddFunc(ir.Fn("main", nil, body...))
	return p
}
