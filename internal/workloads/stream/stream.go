// Package stream builds the STREAM benchmark (McCalpin) as mini-IR
// programs for the compiler pipeline: sequential sweeps over large arrays
// of 8-byte elements, the paper's vehicle for the loop-chunking (Fig. 7),
// object-size (Fig. 10), prefetching (Fig. 11), and Fastswap-comparison
// (Fig. 12) experiments.
package stream

import (
	"fmt"

	"trackfm/internal/ir"
)

// ResetStatsCall marks the boundary between array initialization and the
// timed kernel; it must match the interpreter's builtin name (kept as a
// literal here so the workload package does not depend on the backend).
const ResetStatsCall = "tfm_reset_stats"

// Kernel selects a STREAM kernel.
type Kernel int

const (
	// Sum: sum += a[i] — one guarded access per iteration.
	Sum Kernel = iota
	// Copy: b[i] = a[i] — two guarded accesses per iteration.
	Copy
	// Scale: b[i] = q * a[i].
	Scale
	// Add: c[i] = a[i] + b[i] — three guarded accesses.
	Add
	// Triad: c[i] = a[i] + q * b[i].
	Triad
)

// String implements fmt.Stringer.
func (k Kernel) String() string {
	switch k {
	case Sum:
		return "Sum"
	case Copy:
		return "Copy"
	case Scale:
		return "Scale"
	case Add:
		return "Add"
	case Triad:
		return "Triad"
	default:
		return "unknown"
	}
}

// BytesPerIteration reports how many array bytes one iteration touches,
// for bandwidth reporting (the STREAM metric of Fig. 10).
func (k Kernel) BytesPerIteration() uint64 {
	switch k {
	case Sum:
		return 8
	case Copy, Scale:
		return 16
	case Add, Triad:
		return 24
	default:
		return 0
	}
}

// Program builds the kernel over n-element arrays. Arrays are initialized
// with a[i] = i in a first (untimed in the harness, but still simulated)
// loop; the kernel loop follows. The program returns a checksum so
// correctness is verifiable across backends.
func Program(k Kernel, n int64) *ir.Program {
	p := ir.NewProgram()
	a := ir.V("a")
	idx := func(base ir.Expr, iv string) ir.Expr { return ir.Idx(base, ir.V(iv), 8) }

	body := []ir.Stmt{
		&ir.Malloc{Dst: "a", Size: ir.C(n * 8)},
		ir.Loop("i0", ir.C(0), ir.C(n),
			ir.St(idx(a, "i0"), ir.V("i0")),
		),
	}
	needB := k != Sum
	needC := k == Add || k == Triad
	if needB {
		body = append(body, &ir.Malloc{Dst: "b", Size: ir.C(n * 8)})
	}
	if needC {
		body = append(body, &ir.Malloc{Dst: "c", Size: ir.C(n * 8)})
	}
	if needB {
		// All arrays are initialized so the full working set is live,
		// as in the paper ("total working set size ... fixed to aid in
		// comparison").
		body = append(body, ir.Loop("i1", ir.C(0), ir.C(n),
			ir.St(idx(ir.V("b"), "i1"), ir.Mul(ir.V("i1"), ir.C(2))),
		))
	}
	if needC {
		body = append(body, ir.Loop("i2", ir.C(0), ir.C(n),
			ir.St(idx(ir.V("c"), "i2"), ir.C(0)),
		))
	}

	// Initialization done: reset the clock so the run measures the
	// kernel only, as STREAM itself reports kernel bandwidth.
	body = append(body, &ir.Call{Name: ResetStatsCall})

	const q = 3
	switch k {
	case Sum:
		body = append(body,
			ir.Let("sum", ir.C(0)),
			ir.Loop("i", ir.C(0), ir.C(n),
				ir.Let("sum", ir.Add(ir.V("sum"), ir.Ld(idx(a, "i")))),
			),
			&ir.Return{E: ir.V("sum")},
		)
	case Copy:
		body = append(body,
			ir.Loop("i", ir.C(0), ir.C(n),
				ir.St(idx(ir.V("b"), "i"), ir.Ld(idx(a, "i"))),
			),
			&ir.Return{E: ir.Ld(idx(ir.V("b"), "checkIdx"))},
		)
	case Scale:
		body = append(body,
			ir.Loop("i", ir.C(0), ir.C(n),
				ir.St(idx(ir.V("b"), "i"), ir.Mul(ir.C(q), ir.Ld(idx(a, "i")))),
			),
			&ir.Return{E: ir.Ld(idx(ir.V("b"), "checkIdx"))},
		)
	case Add:
		body = append(body,
			ir.Loop("i", ir.C(0), ir.C(n),
				ir.St(idx(ir.V("c"), "i"),
					ir.Add(ir.Ld(idx(a, "i")), ir.Ld(idx(ir.V("b"), "i")))),
			),
			&ir.Return{E: ir.Ld(idx(ir.V("c"), "checkIdx"))},
		)
	case Triad:
		body = append(body,
			ir.Loop("i", ir.C(0), ir.C(n),
				ir.St(idx(ir.V("c"), "i"),
					ir.Add(ir.Ld(idx(a, "i")), ir.Mul(ir.C(q), ir.Ld(idx(ir.V("b"), "i"))))),
			),
			&ir.Return{E: ir.Ld(idx(ir.V("c"), "checkIdx"))},
		)
	default:
		panic(fmt.Sprintf("stream: unknown kernel %d", k))
	}

	// checkIdx picks a deterministic element for the returned checksum.
	stmts := []ir.Stmt{ir.Let("checkIdx", ir.C(n-1))}
	stmts = append(stmts, body...)
	p.AddFunc(ir.Fn("main", nil, stmts...))
	return p
}

// Expected returns the checksum Program(k, n) must produce.
func Expected(k Kernel, n int64) int64 {
	last := n - 1
	const q = 3
	switch k {
	case Sum:
		return n * (n - 1) / 2
	case Copy:
		return last
	case Scale:
		return q * last
	case Add:
		return last + 2*last
	case Triad:
		return last + q*2*last
	default:
		return 0
	}
}

// WorkingSetBytes reports the far-heap footprint of Program(k, n).
func WorkingSetBytes(k Kernel, n int64) uint64 {
	arrays := uint64(1)
	if k != Sum {
		arrays++
	}
	if k == Add || k == Triad {
		arrays++
	}
	return arrays * uint64(n) * 8
}
