package stream

import (
	"testing"

	"trackfm/internal/compiler"
	"trackfm/internal/core"
	"trackfm/internal/fastswap"
	"trackfm/internal/interp"
	"trackfm/internal/ir"
	"trackfm/internal/sim"
)

func runTFM(t *testing.T, prog *ir.Program, objSize int, heap, budget uint64) (int64, *sim.Env) {
	t.Helper()
	env := sim.NewEnv()
	rt, err := core.NewRuntime(core.Config{
		Env: env, ObjectSize: objSize, HeapSize: heap, LocalBudget: budget,
	})
	if err != nil {
		t.Fatalf("NewRuntime: %v", err)
	}
	res, err := interp.Run(prog, interp.NewTrackFMBackend(rt), interp.Options{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res.Return, env
}

func TestKernelChecksumsAllBackends(t *testing.T) {
	const n = 3000
	for _, k := range []Kernel{Sum, Copy, Scale, Add, Triad} {
		k := k
		t.Run(k.String(), func(t *testing.T) {
			want := Expected(k, n)

			prog := Program(k, n)
			if _, err := compiler.Compile(prog, compiler.Options{
				Chunking: compiler.ChunkCostModel, ObjectSize: 256, Prefetch: true,
			}); err != nil {
				t.Fatalf("Compile: %v", err)
			}
			got, _ := runTFM(t, prog, 256, 1<<22, 1<<14)
			if got != want {
				t.Fatalf("trackfm checksum = %d, want %d", got, want)
			}

			// Fastswap and local agree.
			prog2 := Program(k, n)
			if _, err := compiler.Compile(prog2, compiler.Options{Chunking: compiler.ChunkNone}); err != nil {
				t.Fatalf("Compile: %v", err)
			}
			env := sim.NewEnv()
			sw, err := fastswap.New(fastswap.Config{Env: env, HeapSize: 1 << 22, LocalBudget: 1 << 15})
			if err != nil {
				t.Fatalf("fastswap.New: %v", err)
			}
			res, err := interp.Run(prog2, interp.NewFastswapBackend(sw), interp.Options{})
			if err != nil {
				t.Fatalf("fastswap run: %v", err)
			}
			if res.Return != want {
				t.Fatalf("fastswap checksum = %d, want %d", res.Return, want)
			}

			res, err = interp.Run(prog2, interp.NewLocalBackend(sim.NewEnv()), interp.Options{})
			if err != nil {
				t.Fatalf("local run: %v", err)
			}
			if res.Return != want {
				t.Fatalf("local checksum = %d, want %d", res.Return, want)
			}
		})
	}
}

func TestChunkingSpeedsUpSum(t *testing.T) {
	// Fig. 7's claim at the scale of a unit test: chunked STREAM beats
	// the naive transformation.
	const n = 1 << 15
	run := func(mode compiler.ChunkMode) uint64 {
		prog := Program(Sum, n)
		if _, err := compiler.Compile(prog, compiler.Options{
			Chunking: mode, ObjectSize: 4096,
		}); err != nil {
			t.Fatalf("Compile: %v", err)
		}
		_, env := runTFM(t, prog, 4096, 1<<22, 1<<19) // 50% local
		return env.Clock.Cycles()
	}
	naive := run(compiler.ChunkNone)
	chunked := run(compiler.ChunkCostModel)
	if chunked >= naive {
		t.Fatalf("chunked STREAM Sum (%d cycles) not faster than naive (%d)", chunked, naive)
	}
	speedup := float64(naive) / float64(chunked)
	if speedup < 1.2 {
		t.Fatalf("chunking speedup %.2f, want >= 1.2 (paper: 1.5-2.0)", speedup)
	}
}

func TestBytesPerIteration(t *testing.T) {
	if Sum.BytesPerIteration() != 8 || Copy.BytesPerIteration() != 16 ||
		Add.BytesPerIteration() != 24 {
		t.Fatalf("BytesPerIteration wrong")
	}
}

func TestWorkingSetBytes(t *testing.T) {
	if WorkingSetBytes(Sum, 100) != 800 {
		t.Fatalf("Sum WS = %d", WorkingSetBytes(Sum, 100))
	}
	if WorkingSetBytes(Copy, 100) != 1600 {
		t.Fatalf("Copy WS = %d", WorkingSetBytes(Copy, 100))
	}
	if WorkingSetBytes(Triad, 100) != 2400 {
		t.Fatalf("Triad WS = %d", WorkingSetBytes(Triad, 100))
	}
}

func TestKernelString(t *testing.T) {
	if Sum.String() != "Sum" || Kernel(99).String() != "unknown" {
		t.Fatalf("Kernel.String broken")
	}
}
